#include "srf/srf_bank.h"

#include "util/log.h"

namespace isrf {

void
SrfBank::init(const SrfGeometry &geom, uint32_t laneId)
{
    geom_ = geom;
    laneId_ = laneId;
    remoteDepth_ = geom.remoteQueueDepth;
    words_.assign(geom.laneWords, 0);
    subArrays_.assign(geom.subArrays, SubArray());
    remoteQueue_.clear();
    portsDirty_ = true;  // fresh sub-arrays: force one clean reset
    ecc_.clear();
    offline_.assign(geom.subArrays, 0);
    subUncorrectable_.assign(geom.subArrays, 0);
    onlineCount_ = geom.subArrays;
}

void
SrfBank::newCycle()
{
    // Sub-array ports only become busy through the claim calls below;
    // with none since the last reset every port is already free.
    if (!portsDirty_)
        return;
    for (auto &sa : subArrays_)
        sa.newCycle();
    portsDirty_ = false;
}

Word
SrfBank::read(uint32_t addr) const
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::read: address %u out of range (%zu words)",
              laneId_, addr, words_.size());
    if (ecc_.empty())
        return words_[addr];
    // SECDED decode on every read: single-bit faults are corrected and
    // scrubbed back into storage (logically const); multi-bit faults
    // are detected, counted against the owning sub-array, and the read
    // observes the corrupted word.
    Word observed = words_[addr];
    EccStatus st = ecc_.check(addr, &words_[addr]);
    if (st != EccStatus::Uncorrectable)
        return words_[addr];
    uint32_t sub = geom_.subArrayOf(addr);
    subUncorrectable_[sub]++;
    if (degradeThreshold_ && !offline_[sub] &&
            subUncorrectable_[sub] >= degradeThreshold_ &&
            onlineCount_ > 1) {
        offline_[sub] = 1;
        onlineCount_--;
        ISRF_WARN("SRF bank %u: sub-array %u offline after %u "
                  "uncorrectable errors (%u/%u remain online)",
                  laneId_, sub, subUncorrectable_[sub], onlineCount_,
                  geom_.subArrays);
    }
    return observed;
}

void
SrfBank::write(uint32_t addr, Word w)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::write: address %u out of range (%zu words)",
              laneId_, addr, words_.size());
    if (!ecc_.empty())
        ecc_.onWrite(addr);
    words_[addr] = w;
}

bool
SrfBank::claimSequentialRow(uint32_t addr)
{
    if (addr % geom_.seqWidth != 0)
        panic("SrfBank[%u]: unaligned sequential row address %u", laneId_,
              addr);
    portsDirty_ = true;
    return subArrays_[portFor(addr)].claimSequential();
}

bool
SrfBank::claimIndexedWord(uint32_t addr)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]: indexed address %u out of range", laneId_, addr);
    portsDirty_ = true;
    return subArrays_[portFor(addr)].claimIndexed();
}

uint32_t
SrfBank::portFor(uint32_t addr) const
{
    uint32_t sub = geom_.subArrayOf(addr);
    if (onlineCount_ == geom_.subArrays || !offline_[sub])
        return sub;
    for (uint32_t k = 1; k < geom_.subArrays; k++) {
        uint32_t cand = (sub + k) % geom_.subArrays;
        if (!offline_[cand])
            return cand;
    }
    return sub;  // unreachable: at least one sub-array stays online
}

void
SrfBank::injectBitFlips(uint32_t addr, Word mask, bool transient)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::injectBitFlips: address %u out of range",
              laneId_, addr);
    ecc_.inject(addr, mask, transient, &words_[addr]);
}

void
SrfBank::setSubArrayOffline(uint32_t sub, bool offline)
{
    if (sub >= geom_.subArrays)
        panic("SrfBank[%u]: bad sub-array %u", laneId_, sub);
    if (offline && !offline_[sub] && onlineCount_ <= 1)
        panic("SrfBank[%u]: cannot take the last online sub-array "
              "offline", laneId_);
    if (offline != (offline_[sub] != 0)) {
        offline_[sub] = offline ? 1 : 0;
        onlineCount_ += offline ? -1 : 1;
    }
}

uint32_t
SrfBank::offlineSubArrays() const
{
    return geom_.subArrays - onlineCount_;
}

uint64_t
SrfBank::scrubEcc()
{
    if (ecc_.empty())
        return 0;
    return ecc_.scrub([this](uint64_t addr) { return &words_[addr]; });
}

uint64_t
SrfBank::sequentialAccesses() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.sequentialAccesses();
    return n;
}

uint64_t
SrfBank::indexedAccesses() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.indexedAccesses();
    return n;
}

uint64_t
SrfBank::subArrayConflicts() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.conflicts();
    return n;
}

void
SrfBank::saveState(SnapshotWriter &w) const
{
    w.u64(words_.size());
    w.bytes(words_.data(), words_.size() * sizeof(Word));
    w.u64(remoteQueue_.size());
    for (const RemoteRequest &rq : remoteQueue_) {
        w.u32(rq.sourceLane);
        w.u32(static_cast<uint32_t>(rq.slot));
        w.u32(rq.laneAddr);
        w.u64(rq.seqNo);
        w.u32(rq.wordOffset);
        w.u64(rq.issueCycle);
        w.u64(rq.arrival);
        w.b(rq.isWrite);
        w.u32(rq.writeData);
    }
    ecc_.saveState(w);
    w.u64(offline_.size());
    for (uint8_t off : offline_)
        w.u8(off);
    for (uint32_t u : subUncorrectable_)
        w.u32(u);
    w.u64(subArrays_.size());
    for (const SubArray &sa : subArrays_)
        sa.saveState(w);
}

bool
SrfBank::loadState(SnapshotReader &r)
{
    uint64_t nwords = 0;
    if (!r.len(nwords, sizeof(Word)))
        return false;
    if (nwords != words_.size()) {
        // Geometry drift: storage size is fixed at init().
        r.markFailed();
        return false;
    }
    for (Word &x : words_)
        if (!r.u32(x))
            return false;
    uint64_t nremote = 0;
    if (!r.len(nremote, 38))
        return false;
    remoteQueue_.clear();
    for (uint64_t i = 0; i < nremote; i++) {
        RemoteRequest rq;
        uint32_t slotRaw = 0;
        if (!r.u32(rq.sourceLane) || !r.u32(slotRaw) ||
            !r.u32(rq.laneAddr) || !r.u64(rq.seqNo) ||
            !r.u32(rq.wordOffset) || !r.u64(rq.issueCycle) ||
            !r.u64(rq.arrival) || !r.b(rq.isWrite) ||
            !r.u32(rq.writeData))
            return false;
        rq.slot = static_cast<SlotId>(slotRaw);
        remoteQueue_.push_back(rq);
    }
    if (!ecc_.loadState(r))
        return false;
    uint64_t nsub = 0;
    if (!r.len(nsub, 1) || nsub != offline_.size())
        return false;
    for (uint8_t &off : offline_)
        if (!r.u8(off))
            return false;
    for (uint32_t &u : subUncorrectable_)
        if (!r.u32(u))
            return false;
    onlineCount_ = 0;
    for (uint8_t off : offline_)
        if (!off)
            onlineCount_++;
    uint64_t nsa = 0;
    if (!r.len(nsa, 24) || nsa != subArrays_.size())
        return false;
    for (SubArray &sa : subArrays_)
        if (!sa.loadState(r))
            return false;
    portsDirty_ = false;
    return true;
}

} // namespace isrf
