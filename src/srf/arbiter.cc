#include "srf/arbiter.h"
