/**
 * @file
 * 2D FFT benchmark (§5.2): a 64x64 complex FFT held entirely in the
 * SRF.
 *
 * Base/Cache: the row-FFT pass is followed by a 90-degree rotation of
 * the array *through memory* (store + column-major gather), then the
 * column pass. With the Cache configuration the rotation traffic is
 * captured on chip but the explicit reorder operation remains.
 *
 * ISRF: the natural m-word striping leaves every array column resident
 * in a single lane's bank, so the first column-pass kernel reads its
 * inputs directly via in-lane indexed SRF access and the rotation
 * through memory disappears.
 *
 * The FFT itself is a radix-2 DIF pipeline: one kernel per stage,
 * one butterfly per kernel iteration (4 words in, 4 words out, 10
 * flops), intermediate streams forwarded through the SRF (Figure 1).
 */
#ifndef ISRF_WORKLOADS_FFT_H
#define ISRF_WORKLOADS_FFT_H

#include <complex>
#include <vector>

#include "workloads/workload.h"

namespace isrf {

using Cplx = std::complex<float>;

/** FFT benchmark parameters (paper: 64x64). */
struct FftParams
{
    uint32_t n = 64;  ///< array is n x n; n a power of two
};

/** Bit-reverse the low `bits` bits of v. */
uint32_t bitReverse(uint32_t v, uint32_t bits);

/**
 * Apply one DIF radix-2 stage (stage 0 = widest butterflies) to each
 * length-n row of a row-major matrix. After all log2(n) stages, row
 * FFTs are complete with outputs in bit-reversed positions.
 */
std::vector<Cplx> fftDifStageRows(const std::vector<Cplx> &a, uint32_t n,
                                  uint32_t stage);

/** Full 1D FFT (natural order output) — reference building block. */
std::vector<Cplx> fft1d(std::vector<Cplx> a);

/** O(n^2) direct DFT — independent reference for validation. */
std::vector<Cplx> dft1dReference(const std::vector<Cplx> &a);

/** Reference 2D FFT (rows then columns), natural order. */
std::vector<Cplx> fft2dReference(const std::vector<Cplx> &a, uint32_t n);

/** Kernel graph of a sequential FFT butterfly stage. */
KernelGraph fftStageSeqGraph();

/** Kernel graph of the indexed first column stage (ISRF configs). */
KernelGraph fftStageIdxGraph();

/** Run the FFT2D benchmark on the given machine configuration. */
WorkloadResult runFft2d(const MachineConfig &cfg,
                        const WorkloadOptions &opts);

/**
 * As runFft2d but for an n x n array (n a power of two, and 2*n
 * divisible by lanes*seqWidth so columns stay lane-local).
 */
WorkloadResult runFft2dSized(const MachineConfig &cfg,
                             const WorkloadOptions &opts, uint32_t n);

} // namespace isrf

#endif // ISRF_WORKLOADS_FFT_H
