#include "workloads/filter.h"

#include <algorithm>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

float
filterTap(int dr, int dc)
{
    // A separable-ish smoothing kernel; exact taps only matter for the
    // functional validation.
    static const float row[5] = {0.05f, 0.25f, 0.4f, 0.25f, 0.05f};
    return row[dr + 2] * row[dc + 2];
}

std::vector<float>
conv5x5Reference(const std::vector<float> &img, uint32_t n)
{
    std::vector<float> out(img.size());
    for (uint32_t r = 0; r < n; r++) {
        for (uint32_t c = 0; c < n; c++) {
            float acc = 0;
            for (int dr = -2; dr <= 2; dr++) {
                for (int dc = -2; dc <= 2; dc++) {
                    int rr = std::clamp<int>(static_cast<int>(r) + dr, 0,
                                             static_cast<int>(n) - 1);
                    int cc = std::clamp<int>(static_cast<int>(c) + dc, 0,
                                             static_cast<int>(n) - 1);
                    acc += filterTap(dr, dc) *
                        img[static_cast<size_t>(rr) * n +
                            static_cast<size_t>(cc)];
                }
            }
            out[static_cast<size_t>(r) * n + c] = acc;
        }
    }
    return out;
}

KernelGraph
filterIdxGraph()
{
    KernelBuilder b("filter");
    // One indexed stream per window row, so the five reads of the
    // incoming column issue in a single cycle on ISRF4 (this is one of
    // the two benchmarks where ISRF1 and ISRF4 differ, §5.3).
    StreamRef rows[5];
    for (int i = 0; i < 5; i++)
        rows[i] = b.idxlIn("row" + std::to_string(i));
    auto out = b.seqOut("filtered");

    // Address of the new window column from the iteration counter.
    auto it = b.iterIdx();
    auto rowBase = b.imul(it, b.constInt(32));
    auto colOff = b.iadd(rowBase, b.constInt(2));

    // Read the 5 pixels of the incoming column.
    Value px[5];
    for (int i = 0; i < 5; i++)
        px[i] = b.readIdx(rows[i], b.iadd(colOff, b.constInt(i * 32)));

    // New column partial sum: 5 multiplies + 4 adds.
    Value p = b.fmul(px[0], b.constFloat(filterTap(-2, 2)));
    for (int i = 1; i < 5; i++)
        p = b.fadd(p, b.fmul(px[i], b.constFloat(filterTap(i - 2, 2))));

    // Combine with the four carried column partials.
    Value c1 = b.carryIn();
    Value c2 = b.carryIn();
    Value c3 = b.carryIn();
    Value c4 = b.carryIn();
    Value sum = b.fadd(b.fadd(p, c1), b.fadd(c2, b.fadd(c3, c4)));
    b.write(out, sum);
    b.carryOut(c1, p, 1);
    b.carryOut(c2, c1, 1);
    b.carryOut(c3, c2, 1);
    b.carryOut(c4, c3, 1);
    return b.build();
}

KernelGraph
filterSpGraph()
{
    KernelBuilder b("filter");
    auto in = b.seqIn("strip");
    auto out = b.seqOut("filtered");

    // One new pixel enters the scratchpad row buffers each iteration.
    auto x = b.read(in);
    auto it = b.iterIdx();
    auto wa = b.iand(it, b.constInt(0xff));
    b.spWrite(wa, x);
    b.spWrite(b.iadd(wa, b.constInt(256)), x);

    // Read the window column back from the scratchpad.
    Value px[5];
    for (int i = 0; i < 5; i++)
        px[i] = b.spRead(b.iadd(wa, b.constInt(i * 256)));

    Value p = b.fmul(px[0], b.constFloat(filterTap(-2, 2)));
    for (int i = 1; i < 5; i++)
        p = b.fadd(p, b.fmul(px[i], b.constFloat(filterTap(i - 2, 2))));
    Value c1 = b.carryIn();
    Value c2 = b.carryIn();
    Value c3 = b.carryIn();
    Value c4 = b.carryIn();
    Value sum = b.fadd(b.fadd(p, c1), b.fadd(c2, b.fadd(c3, c4)));
    b.write(out, sum);
    b.carryOut(c1, p, 1);
    b.carryOut(c2, c1, 1);
    b.carryOut(c3, c2, 1);
    b.carryOut(c4, c3, 1);
    return b.build();
}

WorkloadResult
runFilter(const MachineConfig &machineCfg, const WorkloadOptions &opts)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride)
        cfg.inLaneSeparation = opts.separationOverride;
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = "Filter";

    const FilterParams params;
    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const uint32_t n = params.size;
    const uint32_t stripRows = params.stripRows;
    const uint32_t haloRows = 2;
    const uint32_t loadRows = stripRows + 2 * haloRows;
    const uint32_t strips = n / stripRows;

    Rng rng(opts.seed);
    std::vector<float> img(static_cast<size_t>(n) * n);
    for (auto &p : img)
        p = rng.uniformf(0, 1);
    std::vector<float> ref = conv5x5Reference(img, n);

    const uint64_t inAddr = 0;
    const uint64_t outAddr = static_cast<uint64_t>(n) * n;
    m.mem().dram().fill(inAddr, floatsToWords(img));

    std::vector<std::unique_ptr<KernelGraph>> graphs;
    graphs.push_back(std::make_unique<KernelGraph>(
        indexed ? filterIdxGraph() : filterSpGraph()));
    const KernelGraph *kg = graphs[0].get();

    StreamProgram prog(m);
    // Double-buffered strip input (loadRows) and output (stripRows).
    SlotId inA = prog.addStream("stripInA",
                                static_cast<uint64_t>(loadRows) * n,
                                StreamLayout::Striped, StreamDir::In,
                                indexed);
    SlotId inB = prog.addStream("stripInB",
                                static_cast<uint64_t>(loadRows) * n,
                                StreamLayout::Striped, StreamDir::In,
                                indexed);
    SlotId outA = prog.addStream("stripOutA",
                                 static_cast<uint64_t>(stripRows) * n);
    SlotId outB = prog.addStream("stripOutB",
                                 static_cast<uint64_t>(stripRows) * n);
    // Five indexed views (one per window row) over each input buffer.
    std::vector<SlotId> viewsA, viewsB;
    if (indexed) {
        for (int i = 0; i < 5; i++) {
            viewsA.push_back(prog.addStreamAlias("viewA", inA));
            viewsB.push_back(prog.addStreamAlias("viewB", inB));
        }
    }

    // Which image column does lane l own? (c/4) % 8 == l under m-word
    // striping of 256-word rows; neighborhood columns that fall outside
    // the lane are clamped into it (documented approximation).
    auto laneLocalIdx = [&](uint32_t rr, uint32_t cc, uint32_t lane) {
        uint32_t grp = cc / g.seqWidth;
        if (grp % g.lanes != lane) {
            // Clamp to the nearest column group owned by this lane.
            grp = (cc / (g.seqWidth * g.lanes)) * g.lanes + lane;
        }
        uint32_t laneRow = rr * (n / (g.seqWidth * g.lanes)) +
            grp / g.lanes;
        return laneRow * g.seqWidth + cc % g.seqWidth;
    };

    // Last kernel that read each input buffer (WAR for the next load).
    ProgOpId lastKernelOnBuf[2] = {-1, -1};
    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        SlotId inCur = inA, inNxt = inB;
        SlotId outCur = outA, outNxt = outB;
        std::vector<SlotId> *viewsCur = &viewsA, *viewsNxt = &viewsB;
        int bufIdx = 0;
        for (uint32_t s = 0; s < strips; s++) {
            // Strip rows [s*stripRows - 2, s*stripRows + stripRows + 2)
            // clamped into the image.
            int firstRow = static_cast<int>(s * stripRows) -
                static_cast<int>(haloRows);
            firstRow = std::clamp<int>(firstRow, 0,
                static_cast<int>(n - loadRows));
            ProgOpId loadId = prog.load(inCur, inAddr +
                static_cast<uint64_t>(firstRow) * n);
            if (indexed && lastKernelOnBuf[bufIdx] >= 0)
                prog.dependsOn(loadId, lastKernelOnBuf[bufIdx]);

            std::vector<SlotId> binding;
            if (indexed) {
                binding = *viewsCur;
                binding.push_back(outCur);
            } else {
                binding = {inCur, outCur};
            }
            auto inv = newInvocation(m, kg, binding);
            for (uint32_t l = 0; l < g.lanes; l++) {
                auto &tr = inv->laneTraces[l];
                std::vector<Word> outWords;
                for (uint32_t r = 0; r < stripRows; r++) {
                    uint32_t absRow = s * stripRows + r;
                    for (uint32_t cc = 0; cc < n; cc++) {
                        if ((cc / g.seqWidth) % g.lanes != l)
                            continue;
                        tr.iterations++;
                        // Functional output via column partial sums
                        // (different summation order than the
                        // reference).
                        float acc = 0;
                        for (int dc = -2; dc <= 2; dc++) {
                            float colSum = 0;
                            for (int dr = -2; dr <= 2; dr++) {
                                int rr2 = std::clamp<int>(
                                    static_cast<int>(absRow) + dr, 0,
                                    static_cast<int>(n) - 1);
                                int cc2 = std::clamp<int>(
                                    static_cast<int>(cc) + dc, 0,
                                    static_cast<int>(n) - 1);
                                colSum += filterTap(dr, dc) *
                                    img[static_cast<size_t>(rr2) * n +
                                        static_cast<size_t>(cc2)];
                            }
                            acc += colSum;
                        }
                        outWords.push_back(floatToWord(acc));
                        if (indexed) {
                            // 5 new-column reads, one per row stream.
                            int cNew = std::clamp<int>(
                                static_cast<int>(cc) + 2, 0,
                                static_cast<int>(n) - 1);
                            for (int dr = -2; dr <= 2; dr++) {
                                int rr2 = std::clamp<int>(
                                    static_cast<int>(absRow) + dr -
                                        firstRow, 0,
                                    static_cast<int>(loadRows) - 1);
                                tr.idxReads[dr + 2].push_back(
                                    laneLocalIdx(
                                        static_cast<uint32_t>(rr2),
                                        static_cast<uint32_t>(cNew),
                                        l));
                            }
                        }
                    }
                }
                tr.seqWrites[indexed ? 5 : 1] = std::move(outWords);
            }
            inv->finalize();
            ProgOpId kid = prog.kernel(inv);
            if (indexed) {
                prog.dependsOn(kid, loadId);
                lastKernelOnBuf[bufIdx] = kid;
            }
            prog.store(outCur, outAddr +
                static_cast<uint64_t>(s) * stripRows * n);
            std::swap(inCur, inNxt);
            std::swap(outCur, outNxt);
            std::swap(viewsCur, viewsNxt);
            bufIdx ^= 1;
        }
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    std::vector<float> got = wordsToFloats(
        m.mem().dram().dump(outAddr, static_cast<uint64_t>(n) * n));
    bool ok = true;
    for (size_t i = 0; i < ref.size() && ok; i++) {
        if (std::abs(got[i] - ref[i]) > 1e-4f)
            ok = false;
    }
    res.correct = ok;
    res.extra["kernel_ii"] = m.scheduleKernel(*kg).ii;
    return res;
}

} // namespace isrf
