/**
 * @file
 * Common interface for the paper's benchmarks (§5.2).
 *
 * Each workload builds a stream program for a given machine
 * configuration (Base / ISRF1 / ISRF4 / Cache), runs it on a fresh
 * Machine, validates the functional output against an independent
 * reference implementation, and reports timing/traffic statistics.
 */
#ifndef ISRF_WORKLOADS_WORKLOAD_H
#define ISRF_WORKLOADS_WORKLOAD_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/machine.h"
#include "core/stream_program.h"

namespace isrf {

/** Result of one benchmark run on one machine configuration. */
struct WorkloadResult
{
    std::string workload;
    MachineKind kind = MachineKind::Base;
    uint64_t cycles = 0;
    TimeBreakdown breakdown;
    /** Off-chip DRAM words moved (Figure 11 metric). */
    uint64_t dramWords = 0;
    /** Cluster-side sequential SRF words accessed. */
    uint64_t srfSeqWords = 0;
    /** Indexed SRF words accessed (in-lane + cross-lane). */
    uint64_t srfIdxWords = 0;
    /** Words served by the vector cache (Cache machine only). */
    uint64_t cacheWords = 0;
    /** Per-kernel sustained SRF bandwidth records (Figure 13). */
    std::map<std::string, KernelBwRecord> kernelBw;
    /** Functional output matched the reference implementation. */
    bool correct = false;
    /**
     * How the simulation ended: Done for a completed run; Stalled
     * (watchdog), TimedOut (deadline) or Cancelled when the drive loop
     * stopped early (validation is skipped, correct=false); Failed
     * when the workload threw (set by the sweep driver, with the
     * exception message in `error`).
     */
    RunStatus status = RunStatus::Done;
    /** Human-readable failure detail (Failed outcomes); else empty. */
    std::string error;
    /** Workload-specific extras (strip sizes, schedule lengths, ...). */
    std::map<std::string, double> extra;
};

/** Options shared by all workload runners. */
struct WorkloadOptions
{
    /**
     * Number of times the benchmark's steady-state body repeats,
     * reproducing §5.3's "executed multiple times in software
     * pipelined loops" assumption.
     */
    uint32_t repeats = 2;
    uint64_t seed = 12345;
    /** Override the machine's address/data separation (0 = default). */
    uint32_t separationOverride = 0;
    /**
     * Cooperative cancellation / wall-clock deadline observed by the
     * run (Engine::setCancel); nullptr = never cancelled. Not part of
     * the simulation outcome for completed runs: a Done result is
     * identical with or without a (untripped) token.
     */
    const CancelToken *cancel = nullptr;
    /**
     * Mid-job checkpoint/restore context (util/snapshot.h); nullptr =
     * checkpointing off. Attached to the machine before run() so
     * StreamProgram::run resumes from the newest valid checkpoint and
     * saves on the configured cycle cadence. Like `cancel`, not part of
     * the simulation outcome: a completed run's result is identical
     * with or without a context.
     */
    CheckpointContext *checkpoint = nullptr;
};

/** Signature of a workload runner. */
using WorkloadRunner =
    std::function<WorkloadResult(const MachineConfig &,
                                 const WorkloadOptions &)>;

/** Name -> runner registry used by the benchmark harnesses. */
const std::map<std::string, WorkloadRunner> &workloadRegistry();

/**
 * Register an additional workload (external datasets, test doubles).
 * Call before the first bench/sweep run; later registrations replace
 * earlier ones with the same name. Not thread-safe against concurrent
 * registry readers — register during startup, before spawning workers.
 */
void registerWorkload(const std::string &name, WorkloadRunner runner);

/**
 * All registered workload names, alphabetized — the diagnostic shown
 * when an unknown name reaches a bench driver or the daemon `run` op.
 */
std::vector<std::string> workloadNames();

/** "a, b, c" rendering of workloadNames() for error messages. */
std::string workloadNamesJoined();

/**
 * Convenience: run a registered workload on a machine kind. The
 * machine config is MachineConfig::make(kind).fromEnv() — the one
 * explicit point where ISRF_* environment overrides apply.
 */
WorkloadResult runWorkload(const std::string &name, MachineKind kind,
                           const WorkloadOptions &opts = {});

/**
 * Run a registered workload on an explicit, fully resolved machine
 * config. Reads no environment — this is the entry point the parallel
 * SweepRunner uses so concurrently running jobs share no mutable
 * process state.
 */
WorkloadResult runWorkload(const std::string &name,
                           const MachineConfig &cfg,
                           const WorkloadOptions &opts);

/** Fill a WorkloadResult's common fields from a finished machine. */
void harvestResult(WorkloadResult &res, Machine &m, uint64_t cycles);

class JsonWriter;

/** Append a WorkloadResult as a JSON object to an open writer. */
void resultJson(JsonWriter &w, const WorkloadResult &res);

/** A WorkloadResult as a standalone JSON object string. */
std::string resultJson(const WorkloadResult &res);

} // namespace isrf

#endif // ISRF_WORKLOADS_WORKLOAD_H
