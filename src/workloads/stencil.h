/**
 * @file
 * Parameterized 2D/3D stencil kernels (5/9/27-point).
 *
 * Strip-mined like Filter: each strip loads the rows (2D) or planes
 * (3D) it updates plus a one-deep halo. On indexed machines every
 * window row (2D: 3 rows, 3D: 3 planes x 3 rows) gets its own in-lane
 * indexed view of the input buffer and the kernel reads the incoming
 * column through the indexed ports, carrying the previous column
 * partial sums across iterations; Base/Cache machines stream pixels
 * sequentially through a scratchpad row-buffer ring.
 */
#ifndef ISRF_WORKLOADS_STENCIL_H
#define ISRF_WORKLOADS_STENCIL_H

#include "workloads/workload.h"

namespace isrf {

/** Stencil workload names: "Stencil 2D5", "Stencil 2D9", "Stencil 3D27". */
const std::vector<std::string> &stencilShapeNames();

WorkloadResult runStencil(const std::string &name,
                          const MachineConfig &cfg,
                          const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_STENCIL_H
