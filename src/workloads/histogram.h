/**
 * @file
 * Histogram / scatter-reduce microbenchmark.
 *
 * Each lane bins a striped stream of hashed keys into a lane-private
 * 256-bin table. On indexed machines the table is an SRF-resident
 * in-lane read-write stream (the §7 "read-write data structures"
 * extension) updated in place through the indexed ports; Base/Cache
 * machines keep the bins in the cluster scratchpad and flush them with
 * a final kernel. Lane-private tables are merged host-side during
 * validation, so the check is exact integer equality.
 */
#ifndef ISRF_WORKLOADS_HISTOGRAM_H
#define ISRF_WORKLOADS_HISTOGRAM_H

#include "workloads/workload.h"

namespace isrf {

WorkloadResult runHistogram(const MachineConfig &cfg,
                            const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_HISTOGRAM_H
