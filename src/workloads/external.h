/**
 * @file
 * External dataset ingestion: turn a user-supplied MatrixMarket file
 * into a registered SpMV workload (`--dataset` on the bench drivers
 * and the sweep daemon).
 *
 * The file is parsed eagerly at registration (so a bad file fails fast
 * with the reader's collect-all diagnostics) and re-read at run time
 * (so each run reflects the file's current content). The sweep
 * fingerprint folds the file's size + content hash in via
 * findExternalDataset(), making a resumed journal against a modified
 * file stale instead of silently spliced.
 */
#ifndef ISRF_WORKLOADS_EXTERNAL_H
#define ISRF_WORKLOADS_EXTERNAL_H

#include <string>
#include <vector>

namespace isrf {

/** A registered external dataset-backed workload. */
struct ExternalDataset
{
    std::string name;  ///< workload name, "SpMV:<file stem>"
    std::string path;  ///< path as given at registration
    uint32_t rows = 0;
    uint32_t cols = 0;
    uint64_t nnz = 0;
};

/**
 * Parse `path` and register a "SpMV:<stem>" workload running SpMV over
 * it. On parse failure returns false with the reader's diagnostics in
 * `errs` (nullable) and registers nothing. Re-registering the same
 * stem replaces the previous dataset. Not thread-safe: register during
 * startup, before any sweep workers exist.
 */
bool registerExternalDataset(const std::string &path,
                             std::string *nameOut,
                             std::vector<std::string> *errs);

/**
 * The dataset behind a registered external workload name, or nullptr
 * for built-in workloads. Used by the sweep fingerprint to mix in the
 * file's content hash.
 */
const ExternalDataset *findExternalDataset(const std::string &workload);

} // namespace isrf

#endif // ISRF_WORKLOADS_EXTERNAL_H
