#include "workloads/sort.h"

#include <algorithm>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

KernelGraph
sortLocalIdxGraph()
{
    KernelBuilder b("sort1");
    auto in = b.idxlIn("runs");
    auto out = b.seqOut("merged");

    // Run pointers and current head values live in LRFs across
    // iterations; the comparison picks the pointer, the indexed read
    // fetches the next head -- putting the separation on the merge
    // recurrence (para. 5.4).
    auto ptrA = b.carryIn();
    auto ptrB = b.carryIn();
    auto va = b.carryIn();
    auto vb = b.carryIn();
    auto cond = b.cmpLt(va, vb);
    auto winner = b.select(cond, va, vb);
    b.write(out, winner);
    auto idx = b.select(cond, ptrA, ptrB);
    auto next = b.readIdx(in, b.iadd(idx, b.constInt(1)));
    auto newVa = b.select(cond, next, va);
    auto newVb = b.select(cond, vb, next);
    auto newPtrA = b.iadd(ptrA, cond);
    auto newPtrB = b.isub(ptrB, cond);
    b.carryOut(va, newVa, 1);
    b.carryOut(vb, newVb, 1);
    b.carryOut(ptrA, newPtrA, 1);
    b.carryOut(ptrB, newPtrB, 1);
    return b.build();
}

KernelGraph
sortGlobalIdxGraph()
{
    KernelBuilder b("sort2");
    auto in = b.idxlIn("runs");
    auto out = b.seqOut("merged");

    auto ptrA = b.carryIn();
    auto va = b.carryIn();
    auto vb = b.carryIn();
    auto cond = b.cmpLt(va, vb);
    b.write(out, b.select(cond, va, vb));
    auto next = b.readIdx(in, b.iadd(ptrA, cond));
    // Partner-lane exchange of run boundaries: the receive completes a
    // network round trip after the send.
    auto sent = b.commSend(next, cond);
    auto remote = b.commRecv();
    b.orderEdge(sent, remote, 2, 0);
    auto newVa = b.select(cond, next, va);
    auto newVb = b.select(cond, remote, vb);
    b.carryOut(va, newVa, 1);
    b.carryOut(vb, newVb, 1);
    b.carryOut(ptrA, b.iadd(ptrA, cond), 1);
    return b.build();
}

KernelGraph
sortCondStreamGraph(const char *name)
{
    KernelBuilder b(name);
    auto in = b.seqIn("runs");
    auto out = b.seqOut("merged");

    auto va = b.carryIn();
    auto vb = b.carryIn();
    auto x = b.read(in);
    auto cond = b.cmpLt(va, vb);
    b.write(out, b.select(cond, va, vb));
    // Conditional-stream machinery [16]: cross-cluster scan of the
    // condition masks and data routing, three network hops deep for
    // eight clusters, all on the merge recurrence.
    auto m0 = b.iand(cond, b.constInt(1));
    auto s0 = b.commSend(m0, cond);
    auto r0 = b.commRecv();
    b.orderEdge(s0, r0, 2, 0);
    auto m1 = b.iadd(r0, m0);
    auto s1 = b.commSend(m1, cond);
    auto r1 = b.commRecv();
    b.orderEdge(s1, r1, 2, 0);
    auto m2 = b.iadd(r1, m1);
    auto s2 = b.commSend(m2, cond);
    auto r2 = b.commRecv();
    b.orderEdge(s2, r2, 2, 0);
    auto routed = b.select(m2, r2, x);
    auto newVa = b.select(cond, routed, va);
    auto newVb = b.select(cond, vb, routed);
    b.carryOut(va, newVa, 1);
    b.carryOut(vb, b.iadd(newVb, r2), 1);
    return b.build();
}

namespace {

/**
 * Merge pass recording, per output element, the word index read from
 * the input region (the indexed-SRF access trace).
 */
std::vector<Word>
mergePassTraced(const std::vector<Word> &data, size_t run,
                std::vector<uint32_t> &reads)
{
    std::vector<Word> out(data.size());
    for (size_t base = 0; base < data.size(); base += 2 * run) {
        size_t aEnd = std::min(base + run, data.size());
        size_t bEnd = std::min(base + 2 * run, data.size());
        size_t a = base, b = aEnd, o = base;
        while (a < aEnd || b < bEnd) {
            bool takeA = b >= bEnd ||
                (a < aEnd && static_cast<int32_t>(data[a]) <=
                     static_cast<int32_t>(data[b]));
            size_t src = takeA ? a : b;
            reads.push_back(static_cast<uint32_t>(src));
            out[o++] = takeA ? data[a++] : data[b++];
        }
    }
    return out;
}

} // namespace

WorkloadResult
runSort(const MachineConfig &machineCfg, const WorkloadOptions &opts)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride)
        cfg.inLaneSeparation = opts.separationOverride;
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = "Sort";

    const SortParams params;
    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const uint32_t total = params.totalValues;
    const uint32_t perLane = total / g.lanes;
    uint32_t localPasses = 0;
    while ((1u << localPasses) < perLane)
        localPasses++;
    uint32_t globalPasses = 0;
    while ((1u << globalPasses) < g.lanes)
        globalPasses++;

    Rng rng(opts.seed);
    std::vector<Word> input(total);
    for (auto &w : input)
        w = static_cast<Word>(rng.next() & 0x7fffffff);

    const uint64_t inAddr = 0, outAddr = total;
    m.mem().dram().fill(inAddr, input);

    std::vector<std::unique_ptr<KernelGraph>> graphs;
    if (indexed) {
        graphs.push_back(
            std::make_unique<KernelGraph>(sortLocalIdxGraph()));
        graphs.push_back(
            std::make_unique<KernelGraph>(sortGlobalIdxGraph()));
    } else {
        graphs.push_back(
            std::make_unique<KernelGraph>(sortCondStreamGraph("sort1")));
        graphs.push_back(
            std::make_unique<KernelGraph>(sortCondStreamGraph("sort2")));
    }
    const KernelGraph *kLocal = graphs[0].get();
    const KernelGraph *kGlobal = graphs[1].get();

    StreamProgram prog(m);
    // Lane-major data: lane l owns elements [l*perLane, (l+1)*perLane).
    SlotId A = prog.addStream("sortA", perLane, StreamLayout::PerLane,
                              StreamDir::In, indexed);
    SlotId B = prog.addStream("sortB", perLane, StreamLayout::PerLane,
                              StreamDir::In, indexed);

    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        prog.load(A, inAddr);
        SlotId cur = A, nxt = B;
        std::vector<Word> data = input;

        // Local passes: each lane merges within its own block.
        for (uint32_t p = 0; p < localPasses; p++) {
            std::vector<uint32_t> reads;
            std::vector<Word> out =
                mergePassTraced(data, 1ull << p, reads);
            auto inv = newInvocation(m, kLocal, {cur, nxt});
            for (uint32_t l = 0; l < g.lanes; l++) {
                auto &tr = inv->laneTraces[l];
                tr.iterations = perLane;
                for (uint32_t i = 0; i < perLane; i++) {
                    tr.seqWrites[1].push_back(out[l * perLane + i]);
                    if (indexed) {
                        // Lane-local word index into the input slot.
                        tr.idxReads[0].push_back(
                            reads[l * perLane + i] - l * perLane);
                    }
                }
            }
            inv->finalize();
            prog.kernel(inv);
            data = std::move(out);
            std::swap(cur, nxt);
        }

        // Cross-lane passes: merge the eight sorted runs.
        for (uint32_t p = 0; p < globalPasses; p++) {
            std::vector<uint32_t> reads;
            std::vector<Word> out = mergePassTraced(
                data, static_cast<size_t>(perLane) << p, reads);
            auto inv = newInvocation(m, kGlobal, {cur, nxt});
            for (uint32_t l = 0; l < g.lanes; l++) {
                auto &tr = inv->laneTraces[l];
                tr.iterations = perLane;
                for (uint32_t i = 0; i < perLane; i++) {
                    tr.seqWrites[1].push_back(out[l * perLane + i]);
                    if (indexed) {
                        // Reads during cross-lane merges stay within a
                        // lane-sized window of the run being consumed.
                        tr.idxReads[0].push_back(
                            reads[l * perLane + i] % perLane);
                    }
                }
            }
            inv->finalize();
            prog.kernel(inv);
            data = std::move(out);
            std::swap(cur, nxt);
        }
        prog.store(cur, outAddr);
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    std::vector<Word> got = m.mem().dram().dump(outAddr, total);
    std::vector<Word> ref = input;
    std::sort(ref.begin(), ref.end(),
              [](Word a, Word b) {
                  return static_cast<int32_t>(a) <
                      static_cast<int32_t>(b);
              });
    res.correct = got == ref;
    res.extra["local_ii"] = m.scheduleKernel(*kLocal).ii;
    res.extra["global_ii"] = m.scheduleKernel(*kGlobal).ii;
    return res;
}

} // namespace isrf
