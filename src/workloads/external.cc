#include "workloads/external.h"

#include <map>
#include <stdexcept>

#include "util/mtx.h"
#include "workloads/sparse.h"
#include "workloads/workload.h"

namespace isrf {

namespace {

std::map<std::string, ExternalDataset> &
datasets()
{
    static std::map<std::string, ExternalDataset> ds;
    return ds;
}

/** "path/to/web-Google.mtx" -> "web-Google". */
std::string
fileStem(const std::string &path)
{
    size_t slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    return base.empty() ? std::string("dataset") : base;
}

} // namespace

bool
registerExternalDataset(const std::string &path, std::string *nameOut,
                        std::vector<std::string> *errs)
{
    MtxMatrix mtx;
    if (!mtxReadFile(path, mtx, errs))
        return false;

    ExternalDataset ds;
    ds.name = "SpMV:" + fileStem(path);
    ds.path = path;
    ds.rows = mtx.rows;
    ds.cols = mtx.cols;
    ds.nnz = mtx.nnz();
    datasets()[ds.name] = ds;

    const std::string name = ds.name;
    const std::string file = ds.path;
    registerWorkload(name, [name, file](const MachineConfig &cfg,
                                        const WorkloadOptions &opts) {
        // Re-read at run time: the fingerprint hashes the file's
        // current bytes, so results always match the content hash
        // recorded alongside them.
        MtxMatrix m;
        std::vector<std::string> perr;
        if (!mtxReadFile(file, m, &perr)) {
            std::string what = "dataset '" + file + "' unreadable";
            for (const auto &e : perr)
                what += "; " + e;
            throw std::runtime_error(what);
        }
        return runSpmvCsr(name, cooToCsr(m), cfg, opts);
    });
    if (nameOut)
        *nameOut = name;
    return true;
}

const ExternalDataset *
findExternalDataset(const std::string &workload)
{
    auto it = datasets().find(workload);
    return it == datasets().end() ? nullptr : &it->second;
}

} // namespace isrf
