/**
 * @file
 * Filter benchmark (§5.2): 5x5 convolution over a 256x256 image.
 *
 * The image does not fit in the SRF, so it is strip-mined into bands of
 * rows (with two halo rows above and below each band). The Base
 * implementation keeps the sliding 5x5 neighborhood in the cluster
 * scratchpad, paying scratchpad-port accesses and state management in
 * the inner loop; the ISRF implementation reads the neighborhood
 * column directly from the SRF with in-lane indexed accesses. Both
 * move the same data on and off chip (Figure 11: no traffic change);
 * the win is a shorter kernel loop (Figure 12).
 */
#ifndef ISRF_WORKLOADS_FILTER_H
#define ISRF_WORKLOADS_FILTER_H

#include "workloads/workload.h"

namespace isrf {

/** Filter benchmark parameters (paper: 5x5 over 256x256). */
struct FilterParams
{
    uint32_t size = 256;
    uint32_t stripRows = 16;  ///< sized so double-buffered strips fit
};

/** Reference 5x5 convolution with clamped borders. */
std::vector<float> conv5x5Reference(const std::vector<float> &img,
                                    uint32_t n);

/** The 5x5 filter tap at (dr+2, dc+2). */
float filterTap(int dr, int dc);

/** ISRF kernel: 5 new-column indexed reads + partial-sum reuse. */
KernelGraph filterIdxGraph();

/** Base kernel: scratchpad-buffered sliding window. */
KernelGraph filterSpGraph();

WorkloadResult runFilter(const MachineConfig &cfg,
                         const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_FILTER_H
