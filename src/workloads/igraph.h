/**
 * @file
 * Irregular Graph (IG) synthetic benchmark (§5.2, Table 4): neighbor
 * interactions over a static irregular graph, strip-mined because the
 * graph greatly exceeds SRF capacity.
 *
 * Base: every edge's neighbor record is *replicated* into a sequential
 * stream gathered from memory (per-edge traffic = a full record).
 * ISRF: the strip's node records are loaded once (condensed array) and
 * neighbors are fetched by cross-lane indexed SRF reads through an
 * index (pointer) stream — eliminating intra-strip replication at the
 * cost of one index word per edge, and roughly doubling the strip size
 * that fits in the same SRF budget (Table 4).
 *
 * Datasets: IG_{S|D}{M|C}{S|L} — Sparse/Dense average degree,
 * Memory/Compute limited (16 vs 51 FP ops per neighbor), Short/Long
 * strips.
 */
#ifndef ISRF_WORKLOADS_IGRAPH_H
#define ISRF_WORKLOADS_IGRAPH_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace isrf {

/** One IG dataset configuration. */
struct IgDataset
{
    std::string name;
    uint32_t fpOpsPerNeighbor;  ///< 16 (memory) or 51 (compute)
    uint32_t avgDegree;         ///< 4 (sparse) or 16 (dense)
    uint32_t nodes;
    /** SRF word budget per strip (sets Table 4 strip sizes). */
    uint32_t stripBudgetWords;
};

/** The four Table 4 datasets. */
const std::vector<IgDataset> &igDatasets();
const IgDataset &igDataset(const std::string &name);

/** A generated irregular graph. */
struct IgGraph
{
    uint32_t nodes = 0;
    /** CSR-ish: per node, its neighbor node ids. */
    std::vector<std::vector<uint32_t>> adj;
    uint64_t edges() const;
};

/** Generate a graph with locality-biased neighbor selection. */
IgGraph igGenerate(const IgDataset &ds, uint64_t seed);

/** Words per node record (value + auxiliary fields). */
constexpr uint32_t kIgRecordWords = 4;

/** Strip sizes (neighbors per kernel invocation), base vs indexed. */
struct IgStripSizes
{
    uint32_t baseNeighbors;
    uint32_t indexedNeighbors;
};
IgStripSizes igStripSizes(const IgDataset &ds);

/** Reference one-sweep (Jacobi) node update. */
std::vector<float> igReferenceUpdate(const IgGraph &g,
                                     const std::vector<float> &values);

/** Kernel graphs: IGraph1 = 16 FP ops, IGraph2 = 51 FP ops (§5.4). */
KernelGraph igIdxKernelGraph(uint32_t fpOps);
KernelGraph igBaseKernelGraph(uint32_t fpOps);

/** Run one IG dataset on a machine configuration. */
WorkloadResult runIgraph(const std::string &dataset,
                         const MachineConfig &cfg,
                         const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_IGRAPH_H
