#include "workloads/histogram.h"

#include <algorithm>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

namespace {

constexpr uint32_t kSamples = 32768;
constexpr uint32_t kStripWords = 8192;
constexpr uint32_t kBins = 256;
constexpr uint32_t kHotKeys = 16;
constexpr double kHotFrac = 0.3;

uint32_t
binOf(Word key)
{
    // Knuth multiplicative hash, top 8 bits of the 32-bit product.
    return (static_cast<uint32_t>(key) * 2654435761u) >> 24;
}

/** Indexed kernel: in-place bump of the SRF-resident bin table. */
KernelGraph
histIdxGraph()
{
    KernelBuilder b("hist");
    auto keys = b.seqIn("keys");
    auto table = b.idxlRw("bins");

    auto k = b.read(keys);
    auto h = b.ishr(b.imul(k, b.constInt(
        static_cast<int32_t>(2654435761u))), b.constInt(24));
    h = b.iand(h, b.constInt(static_cast<int32_t>(kBins - 1)));
    auto v = b.readIdx(table, h);
    b.writeIdx(table, h, b.iadd(v, b.constInt(1)));
    return b.build();
}

/** Base/Cache kernel: bins live in the cluster scratchpad. */
KernelGraph
histSpGraph()
{
    KernelBuilder b("hist");
    auto keys = b.seqIn("keys");

    auto k = b.read(keys);
    auto h = b.ishr(b.imul(k, b.constInt(
        static_cast<int32_t>(2654435761u))), b.constInt(24));
    h = b.iand(h, b.constInt(static_cast<int32_t>(kBins - 1)));
    auto v = b.spRead(h);
    b.spWrite(h, b.iadd(v, b.constInt(1)));
    return b.build();
}

/** Flush kernel: stream the scratchpad bins out sequentially. */
KernelGraph
histFlushGraph()
{
    KernelBuilder b("hist_flush");
    auto out = b.seqOut("bins_out");
    auto it = b.iterIdx();
    b.write(out, b.spRead(it));
    return b.build();
}

} // namespace

WorkloadResult
runHistogram(const MachineConfig &machineCfg, const WorkloadOptions &opts)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride)
        cfg.inLaneSeparation = opts.separationOverride;
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = "Histogram";

    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const bool cached = cfg.mem.cacheEnabled;
    const uint32_t strips = kSamples / kStripWords;

    // Keys: mostly uniform, with a hot set so bin conflicts are
    // non-uniform (the scatter-reduce stress case).
    Rng rng(opts.seed ^ 0x415ull);
    std::vector<Word> hot(kHotKeys);
    for (auto &h : hot)
        h = static_cast<Word>(rng.below(1u << 20));
    std::vector<Word> keys(kSamples);
    for (auto &k : keys)
        k = rng.chance(kHotFrac) ? hot[rng.below(kHotKeys)]
                                 : static_cast<Word>(rng.below(1u << 20));

    std::vector<uint64_t> refHist(kBins, 0);
    for (Word k : keys)
        refHist[binOf(k)]++;

    const uint64_t keysAddr = 0;
    m.mem().dram().fill(keysAddr, keys);

    std::vector<std::unique_ptr<KernelGraph>> graphs;
    graphs.push_back(std::make_unique<KernelGraph>(
        indexed ? histIdxGraph() : histSpGraph()));
    const KernelGraph *kg = graphs[0].get();
    const KernelGraph *flushKg = nullptr;
    if (!indexed) {
        graphs.push_back(std::make_unique<KernelGraph>(histFlushGraph()));
        flushKg = graphs[1].get();
    }

    StreamProgram prog(m);
    SlotId keysA = prog.addStream("keysA", kStripWords,
        StreamLayout::Striped);
    SlotId keysB = prog.addStream("keysB", kStripWords,
        StreamLayout::Striped);
    SlotId bins = -1, binsOut = -1;
    if (indexed) {
        // Lane-private bin tables: an in-lane read-write indexed
        // stream resident in the SRF for the whole run.
        bins = prog.addStream("bins", kBins, StreamLayout::PerLane,
                              StreamDir::In, true, false, 1, {}, true);
        prog.fillStream(bins, std::vector<Word>(
            static_cast<size_t>(kBins) * g.lanes, 0));
    } else {
        binsOut = prog.addStream("binsOut", kBins,
                                 StreamLayout::PerLane, StreamDir::Out);
    }

    // Running per-lane histograms: the idxWrites trace carries the
    // running count so the SRF table ends at the final value.
    std::vector<std::vector<Word>> laneHist(
        g.lanes, std::vector<Word>(kBins, 0));
    ProgOpId lastKernel = -1;
    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        SlotId sCur = keysA, sNxt = keysB;
        for (uint32_t s = 0; s < strips; s++) {
            prog.load(sCur, keysAddr +
                static_cast<uint64_t>(s) * kStripWords, cached);
            auto inv = newInvocation(m, kg,
                indexed ? std::vector<SlotId>{sCur, bins}
                        : std::vector<SlotId>{sCur});
            for (uint32_t l = 0; l < g.lanes; l++)
                inv->laneTraces[l].iterations = 0;
            for (uint32_t i = 0; i < kStripWords; i++) {
                uint32_t idx = s * kStripWords + i;
                uint32_t lane = (i / g.seqWidth) % g.lanes;
                auto &tr = inv->laneTraces[lane];
                tr.iterations++;
                uint32_t bin = binOf(keys[idx]);
                laneHist[lane][bin]++;
                if (indexed) {
                    tr.idxReads[1].push_back(bin);
                    IdxWriteTraceEntry w;
                    w.recordIndex = bin;
                    w.data[0] = laneHist[lane][bin];
                    tr.idxWrites[1].push_back(w);
                }
            }
            inv->finalize();
            ProgOpId kid = prog.kernel(inv);
            lastKernel = kid;
            std::swap(sCur, sNxt);
        }
    }
    if (!indexed) {
        // Drain the scratchpad bins with a final flush kernel; its
        // trace carries each lane's final table.
        auto inv = newInvocation(m, flushKg, {binsOut});
        for (uint32_t l = 0; l < g.lanes; l++) {
            auto &tr = inv->laneTraces[l];
            tr.iterations = kBins;
            tr.seqWrites[0] = laneHist[l];
        }
        inv->finalize();
        ProgOpId fid = prog.kernel(inv);
        if (lastKernel >= 0)
            prog.dependsOn(fid, lastKernel);  // scratchpad carry-over
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    // The lane tables (PerLane dump = lane-major) must sum to exactly
    // repeats x the reference histogram.
    std::vector<Word> table =
        prog.dumpStream(indexed ? bins : binsOut);
    bool ok = table.size() == static_cast<size_t>(kBins) * g.lanes;
    for (uint32_t b = 0; b < kBins && ok; b++) {
        uint64_t total = 0;
        for (uint32_t l = 0; l < g.lanes; l++)
            total += table[static_cast<size_t>(l) * kBins + b];
        if (total != refHist[b] * opts.repeats)
            ok = false;
    }
    res.correct = ok;
    res.extra["samples"] = kSamples;
    res.extra["bins"] = kBins;
    res.extra["hot_frac"] = kHotFrac;
    res.extra["kernel_ii"] = m.scheduleKernel(*kg).ii;
    return res;
}

} // namespace isrf
