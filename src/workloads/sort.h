/**
 * @file
 * Sort benchmark (§5.2): merge sort of 4096 32-bit values.
 *
 * Each merge iteration conditionally consumes the smaller of two run
 * heads. On the Base machine this becomes a *conditional stream* [16]:
 * the dynamically selected elements must be distributed across lanes
 * through the inter-cluster network (a prefix-sum/routing step on
 * every iteration), which puts several communication operations on the
 * merge recurrence. With an indexed SRF the condition instead feeds an
 * address computation and the element is fetched with an in-lane
 * indexed read; no cross-lane communication is needed until each
 * lane's 512 elements are internally sorted (kernel Sort1), after
 * which three cross-lane merge passes (kernel Sort2) combine the runs.
 */
#ifndef ISRF_WORKLOADS_SORT_H
#define ISRF_WORKLOADS_SORT_H

#include "workloads/workload.h"

namespace isrf {

/** Sort benchmark parameters (paper: 4096 values). */
struct SortParams
{
    uint32_t totalValues = 4096;
};

/** ISRF local-merge kernel: conditional index computation (Sort1). */
KernelGraph sortLocalIdxGraph();

/** ISRF cross-lane merge kernel (Sort2): indexed reads + comm. */
KernelGraph sortGlobalIdxGraph();

/** Base conditional-stream merge kernel (Sort1/Sort2 on Base/Cache). */
KernelGraph sortCondStreamGraph(const char *name);

WorkloadResult runSort(const MachineConfig &cfg,
                       const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_SORT_H
