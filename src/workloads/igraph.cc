#include "workloads/igraph.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

const std::vector<IgDataset> &
igDatasets()
{
    static const std::vector<IgDataset> ds = {
        // name, fpOps, degree, nodes, strip budget (SRF words)
        // Graphs are sized well beyond the 128 KB on-chip capacity
        // ("the graph is assumed to be much larger than the available
        // SRF space"), so caches capture only partial inter-strip
        // overlap.
        {"IG_SML", 16, 4, 16384, 7000},
        {"IG_SCL", 51, 4, 16384, 7000},
        {"IG_DMS", 16, 16, 8192, 1200},
        {"IG_DCS", 51, 16, 8192, 1200},
    };
    return ds;
}

const IgDataset &
igDataset(const std::string &name)
{
    for (const auto &d : igDatasets())
        if (d.name == name)
            return d;
    fatal("igDataset: unknown dataset '%s'", name.c_str());
}

uint64_t
IgGraph::edges() const
{
    uint64_t n = 0;
    for (const auto &a : adj)
        n += a.size();
    return n;
}

IgGraph
igGenerate(const IgDataset &ds, uint64_t seed)
{
    IgGraph g;
    g.nodes = ds.nodes;
    g.adj.resize(ds.nodes);
    Rng rng(seed ^ 0x16a5);
    // Locality window sized so most neighbors land inside a strip.
    IgStripSizes strips = igStripSizes(ds);
    uint32_t window = std::max<uint32_t>(
        8, strips.indexedNeighbors / ds.avgDegree / 4);
    for (uint32_t i = 0; i < ds.nodes; i++) {
        uint32_t lo = ds.avgDegree - ds.avgDegree / 4;
        uint32_t hi = ds.avgDegree + ds.avgDegree / 4;
        auto deg = static_cast<uint32_t>(rng.range(lo, hi));
        for (uint32_t k = 0; k < deg; k++) {
            uint32_t nb;
            if (rng.chance(0.96)) {
                int64_t off = rng.range(-static_cast<int64_t>(window),
                                        static_cast<int64_t>(window));
                int64_t cand = static_cast<int64_t>(i) + off;
                cand = std::clamp<int64_t>(cand, 0, ds.nodes - 1);
                nb = static_cast<uint32_t>(cand);
            } else {
                nb = static_cast<uint32_t>(rng.below(ds.nodes));
            }
            if (nb == i)
                nb = (nb + 1) % ds.nodes;
            g.adj[i].push_back(nb);
        }
    }
    return g;
}

IgStripSizes
igStripSizes(const IgDataset &ds)
{
    // SRF words per neighbor record processed:
    //  Base: a full replicated record per edge + node in/out records.
    //  ISRF: one index word per edge + node records + gathered
    //        out-of-strip records (~10% of edges).
    double d = ds.avgDegree;
    double costBase = kIgRecordWords + 2.0 * kIgRecordWords / d;
    double costIdx = 1.0 + 2.0 * kIgRecordWords / d +
        0.10 * kIgRecordWords;
    IgStripSizes s;
    s.baseNeighbors = static_cast<uint32_t>(ds.stripBudgetWords /
                                            costBase);
    s.indexedNeighbors = static_cast<uint32_t>(ds.stripBudgetWords /
                                               costIdx);
    return s;
}

std::vector<float>
igReferenceUpdate(const IgGraph &g, const std::vector<float> &values)
{
    std::vector<float> out(g.nodes);
    for (uint32_t i = 0; i < g.nodes; i++) {
        float acc = 0;
        for (uint32_t nb : g.adj[i])
            acc += 0.5f * values[nb] + 0.25f * (values[nb] * 0.5f);
        out[i] = 0.3f * values[i] + 0.7f * acc;
    }
    return out;
}

KernelGraph
igIdxKernelGraph(uint32_t fpOps)
{
    KernelBuilder b(fpOps > 30 ? "igraph2" : "igraph1");
    auto edges = b.seqIn("edges");      // neighbor pointer stream
    auto nodes = b.idxIn("nodes");      // condensed array, cross-lane
    auto out = b.seqOut("updated");

    auto ptr = b.read(edges);
    auto rec = b.readIdx(nodes, ptr);   // 4-word record

    // Per-neighbor compute: fpOps floating-point operations. The
    // compute-heavy variant includes two unpipelined divides (e.g.
    // 1/r and 1/r^2 terms), which dominate its loop length.
    Value acc = b.fmul(rec, b.constFloat(0.5f));
    uint32_t emitted = 1;
    if (fpOps > 30) {
        acc = b.fdiv(acc, b.constFloat(1.5f));
        Value d2 = b.fdiv(rec, b.constFloat(2.5f));
        acc = b.fadd(acc, d2);
        emitted += 3;
    }
    Value x = rec;
    while (emitted < fpOps) {
        x = b.fmul(x, b.constFloat(1.01f));
        acc = b.fadd(acc, x);
        emitted += 2;
    }
    b.write(out, acc);
    return b.build();
}

KernelGraph
igBaseKernelGraph(uint32_t fpOps)
{
    KernelBuilder b(fpOps > 30 ? "igraph2" : "igraph1");
    auto nbs = b.seqIn("neighbors");    // replicated records
    auto own = b.seqIn("nodes_in");
    auto out = b.seqOut("updated");

    // A full record streams past per neighbor.
    auto r0 = b.read(nbs);
    auto r1 = b.read(nbs);
    auto r2 = b.read(nbs);
    auto r3 = b.read(nbs);
    auto self = b.read(own);
    Value acc = b.fmul(r0, b.constFloat(0.5f));
    acc = b.fadd(acc, b.fmul(r1, b.constFloat(0.25f)));
    uint32_t emitted = 3;
    if (fpOps > 30) {
        acc = b.fdiv(acc, b.constFloat(1.5f));
        Value d2 = b.fdiv(r2, b.constFloat(2.5f));
        acc = b.fadd(acc, d2);
        emitted += 3;
    }
    Value x = b.fadd(r2, r3);
    emitted++;
    while (emitted < fpOps) {
        x = b.fmul(x, b.constFloat(1.01f));
        acc = b.fadd(acc, x);
        emitted += 2;
    }
    b.write(out, b.fadd(acc, self));
    return b.build();
}

namespace {

/** Node record words: {val, aux=val/2, 0, 0}. */
std::vector<Word>
nodeRecords(const std::vector<float> &vals, uint32_t from, uint32_t to)
{
    std::vector<Word> w;
    w.reserve(static_cast<size_t>(to - from) * kIgRecordWords);
    for (uint32_t i = from; i < to; i++) {
        w.push_back(floatToWord(vals[i]));
        w.push_back(floatToWord(vals[i] * 0.5f));
        w.push_back(0);
        w.push_back(0);
    }
    return w;
}

} // namespace

WorkloadResult
runIgraph(const std::string &dataset, const MachineConfig &machineCfg,
          const WorkloadOptions &opts)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride) {
        cfg.inLaneSeparation = opts.separationOverride;
        cfg.crossLaneSeparation = opts.separationOverride;
    }
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    const IgDataset &ds = igDataset(dataset);
    res.workload = ds.name;

    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const bool cached = cfg.mem.cacheEnabled;

    IgGraph graph = igGenerate(ds, opts.seed);
    Rng rng(opts.seed ^ 0x77);
    std::vector<float> vals(ds.nodes);
    for (auto &v : vals)
        v = rng.uniformf(0.1f, 1.0f);
    std::vector<float> ref = igReferenceUpdate(graph, vals);

    IgStripSizes strips = igStripSizes(ds);
    uint32_t stripNeighbors = indexed ? strips.indexedNeighbors
                                      : strips.baseNeighbors;
    // Whole multiples of the lane count keep the node->lane mapping
    // aligned with the striped record layout across strips.
    uint32_t stripNodes = std::max<uint32_t>(
        g.lanes,
        stripNeighbors / ds.avgDegree / g.lanes * g.lanes);
    res.extra["strip_neighbors"] = stripNeighbors;
    res.extra["strip_nodes"] = stripNodes;

    // --- DRAM layout ---
    const uint64_t nodeAddr = 0;
    const uint64_t outAddr = nodeAddr +
        static_cast<uint64_t>(ds.nodes) * kIgRecordWords;
    const uint64_t replAddr = outAddr +
        static_cast<uint64_t>(ds.nodes) * kIgRecordWords;
    // Pre-replicated per-edge neighbor records (Base, Figure 5a) and
    // the pointer streams (ISRF) share the tail region.
    m.mem().dram().fill(nodeAddr, nodeRecords(vals, 0, ds.nodes));

    // Strip partitioning.
    struct Strip
    {
        uint32_t startNode, endNode;
        std::vector<std::vector<uint32_t>> laneEdges;  // nb ids per lane
        std::vector<uint32_t> extIds;                  // out-of-strip
        std::unordered_map<uint32_t, uint32_t> extIndex;
    };
    std::vector<Strip> stripList;
    for (uint32_t start = 0; start < ds.nodes; start += stripNodes) {
        Strip s;
        s.startNode = start;
        s.endNode = std::min(ds.nodes, start + stripNodes);
        s.laneEdges.resize(g.lanes);
        for (uint32_t i = s.startNode; i < s.endNode; i++) {
            uint32_t lane = i % g.lanes;
            for (uint32_t nb : graph.adj[i]) {
                s.laneEdges[lane].push_back(nb);
                if ((nb < s.startNode || nb >= s.endNode) &&
                        !s.extIndex.count(nb)) {
                    s.extIndex[nb] =
                        static_cast<uint32_t>(s.extIds.size());
                    s.extIds.push_back(nb);
                }
            }
        }
        stripList.push_back(std::move(s));
    }
    uint32_t maxExt = 0;
    uint64_t maxStripEdges = 0;
    for (const auto &s : stripList) {
        maxExt = std::max(maxExt,
                          static_cast<uint32_t>(s.extIds.size()));
        uint64_t e = 0;
        for (const auto &le : s.laneEdges)
            e += le.size();
        maxStripEdges = std::max(maxStripEdges, e);
    }

    // Pre-replicated record array for Base: per strip, lane-major edge
    // order. Also the ISRF pointer streams. Functional contents only
    // matter for the Base replicated records (consumed as stream data).
    uint64_t cursor = replAddr;
    std::vector<uint64_t> stripStreamAddr(stripList.size());
    for (size_t si = 0; si < stripList.size(); si++) {
        stripStreamAddr[si] = cursor;
        std::vector<Word> data;
        for (const auto &laneList : stripList[si].laneEdges) {
            for (uint32_t nb : laneList) {
                if (indexed) {
                    data.push_back(nb);
                } else {
                    data.push_back(floatToWord(vals[nb]));
                    data.push_back(floatToWord(vals[nb] * 0.5f));
                    data.push_back(0);
                    data.push_back(0);
                }
            }
        }
        m.mem().dram().fill(cursor, data);
        cursor += data.size();
    }

    std::vector<std::unique_ptr<KernelGraph>> graphs;
    graphs.push_back(std::make_unique<KernelGraph>(
        indexed ? igIdxKernelGraph(ds.fpOpsPerNeighbor)
                : igBaseKernelGraph(ds.fpOpsPerNeighbor)));
    const KernelGraph *kg = graphs[0].get();

    StreamProgram prog(m);
    uint64_t nodeSlotWords =
        (static_cast<uint64_t>(stripNodes) + maxExt) * kIgRecordWords;
    // Cross-lane reads fetch the 2-word (value, aux) head of each
    // 4-word record: record index = 2 * node record index.
    SlotId nodesInA = prog.addStream("nodesInA", nodeSlotWords,
        StreamLayout::Striped, StreamDir::In, indexed, indexed, 2);
    SlotId nodesInB = prog.addStream("nodesInB", nodeSlotWords,
        StreamLayout::Striped, StreamDir::In, indexed, indexed, 2);
    SlotId outA = prog.addStream("nodesOutA",
        static_cast<uint64_t>(stripNodes) * kIgRecordWords);
    SlotId outB = prog.addStream("nodesOutB",
        static_cast<uint64_t>(stripNodes) * kIgRecordWords);
    uint64_t edgeSlotWords = maxStripEdges *
        (indexed ? 1 : kIgRecordWords);
    SlotId edgesA = prog.addStream("edgesA", edgeSlotWords / g.lanes + 8,
                                   StreamLayout::PerLane);
    SlotId edgesB = prog.addStream("edgesB", edgeSlotWords / g.lanes + 8,
                                   StreamLayout::PerLane);

    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        SlotId nCur = nodesInA, nNxt = nodesInB;
        SlotId oCur = outA, oNxt = outB;
        SlotId eCur = edgesA, eNxt = edgesB;
        for (size_t si = 0; si < stripList.size(); si++) {
            const Strip &s = stripList[si];
            uint32_t nNodes = s.endNode - s.startNode;
            uint64_t stripEdges = 0;
            for (const auto &le : s.laneEdges)
                stripEdges += le.size();

            // Node records for this strip.
            prog.load(nCur,
                      nodeAddr + static_cast<uint64_t>(s.startNode) *
                          kIgRecordWords,
                      cached,
                      static_cast<uint64_t>(nNodes) * kIgRecordWords);
            if (indexed && !s.extIds.empty()) {
                // Condense out-of-strip neighbors behind the strip.
                prog.gather(nCur, nodeAddr, s.extIds, kIgRecordWords,
                            cached,
                            static_cast<uint64_t>(nNodes) *
                                kIgRecordWords);
            }
            // Edge pointer stream (ISRF) or replicated records
            // (Base). The Cache machine gathers the records through
            // the cache, which captures intra- AND inter-strip reuse.
            if (!indexed && cached) {
                std::vector<uint32_t> nbIdx;
                for (const auto &laneList : s.laneEdges)
                    for (uint32_t nb : laneList)
                        nbIdx.push_back(nb);
                prog.gather(eCur, nodeAddr, std::move(nbIdx),
                            kIgRecordWords, true);
            } else {
                prog.load(eCur, stripStreamAddr[si], false,
                          stripEdges * (indexed ? 1 : kIgRecordWords));
            }

            auto inv = newInvocation(m, kg,
                indexed ? std::vector<SlotId>{eCur, nCur, oCur}
                        : std::vector<SlotId>{eCur, nCur, oCur});
            for (uint32_t l = 0; l < g.lanes; l++) {
                auto &tr = inv->laneTraces[l];
                uint64_t laneNodes = 0;
                std::vector<Word> outWords;
                for (uint32_t i = s.startNode + l; i < s.endNode;
                        i += g.lanes) {
                    laneNodes++;
                    float acc = 0;
                    for (uint32_t nb : graph.adj[i]) {
                        acc += 0.5f * vals[nb] +
                            0.25f * (vals[nb] * 0.5f);
                        if (indexed) {
                            uint32_t recIdx;
                            if (nb >= s.startNode && nb < s.endNode)
                                recIdx = nb - s.startNode;
                            else
                                recIdx = nNodes + s.extIndex.at(nb);
                            tr.idxReads[1].push_back(recIdx * 2);
                        }
                    }
                    float newVal = 0.3f * vals[i] + 0.7f * acc;
                    outWords.push_back(floatToWord(newVal));
                    outWords.push_back(floatToWord(acc));
                    outWords.push_back(static_cast<Word>(
                        graph.adj[i].size()));
                    outWords.push_back(0);
                }
                tr.iterations = std::max<uint64_t>(
                    s.laneEdges[l].size(),
                    laneNodes * kIgRecordWords);
                tr.seqWrites[2] = std::move(outWords);
            }
            inv->finalize();
            prog.kernel(inv);
            prog.store(oCur,
                       outAddr + static_cast<uint64_t>(s.startNode) *
                           kIgRecordWords,
                       false,
                       static_cast<uint64_t>(nNodes) * kIgRecordWords);
            std::swap(nCur, nNxt);
            std::swap(oCur, oNxt);
            std::swap(eCur, eNxt);
        }
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    // --- validation: updated node values vs reference ---
    bool ok = true;
    std::vector<Word> got = m.mem().dram().dump(
        outAddr, static_cast<uint64_t>(ds.nodes) * kIgRecordWords);
    for (uint32_t i = 0; i < ds.nodes && ok; i++) {
        float v = wordToFloat(got[static_cast<size_t>(i) *
                                  kIgRecordWords]);
        if (std::abs(v - ref[i]) > 1e-3f * (std::abs(ref[i]) + 1))
            ok = false;
    }
    res.correct = ok;
    res.extra["kernel_ii"] = m.scheduleKernel(*kg).ii;
    res.extra["strips"] = static_cast<double>(stripList.size());
    return res;
}

} // namespace isrf
