/**
 * @file
 * Microbenchmarks for the parameter studies of §5.4 (Figures 17/18).
 *
 * Figure 17: sustained *in-lane* indexed throughput as a function of
 * the number of sub-arrays per bank and the address-FIFO size, driven
 * by 4 random single-word reads per cycle per cluster (issued as a
 * bundle across 4 indexed streams, as a VLIW cluster would).
 *
 * Figure 18: sustained *cross-lane* indexed throughput as a function
 * of the SRF-side network ports per bank and the fraction of cycles
 * occupied by unrelated statically scheduled inter-cluster traffic,
 * driven by 1 random cross-lane read + 3 sequential stream accesses
 * per cycle per cluster.
 */
#ifndef ISRF_WORKLOADS_MICRO_H
#define ISRF_WORKLOADS_MICRO_H

#include <cstdint>

#include "net/crossbar.h"

namespace isrf {

/** Figure 17 driver parameters. */
struct InLaneMicroParams
{
    uint32_t subArrays = 4;
    uint32_t fifoSize = 8;
    uint32_t streams = 4;     ///< random reads issued per cycle
    uint32_t cycles = 20000;
    uint64_t seed = 1;
    /**
     * Sub-arrays taken offline per bank before the run (graceful-
     * degradation study; clamped to subArrays - 1 so one survives).
     */
    uint32_t offlineSubArrays = 0;
};

/** Sustained in-lane indexed throughput (words/cycle/lane). */
double inLaneRandomThroughput(const InLaneMicroParams &p);

/** Figure 18 driver parameters. */
struct CrossLaneMicroParams
{
    uint32_t netPortsPerBank = 1;
    double commOccupancy = 0.0;  ///< fraction of cycles, 0..0.8
    uint32_t seqStreams = 3;     ///< sequential accesses per cycle
    uint32_t cycles = 20000;
    uint64_t seed = 1;
    /** Network topology (§7 sparse-interconnect ablation). */
    NetTopology topology = NetTopology::Crossbar;
};

/** Sustained cross-lane indexed throughput (words/cycle/lane). */
double crossLaneRandomThroughput(const CrossLaneMicroParams &p);

} // namespace isrf

#endif // ISRF_WORKLOADS_MICRO_H
