/**
 * @file
 * Helpers for building kernel invocations from functional traces.
 */
#ifndef ISRF_WORKLOADS_TRACE_UTIL_H
#define ISRF_WORKLOADS_TRACE_UTIL_H

#include <memory>
#include <vector>

#include "core/machine.h"

namespace isrf {

/** Lane owning word `w` of a striped stream. */
inline uint32_t
stripeLane(const SrfGeometry &g, uint64_t wordIndex)
{
    return static_cast<uint32_t>((wordIndex / g.seqWidth) % g.lanes);
}

/** Split a striped stream's words into per-lane vectors (lane order). */
inline std::vector<std::vector<Word>>
splitStriped(const SrfGeometry &g, const std::vector<Word> &data)
{
    std::vector<std::vector<Word>> lanes(g.lanes);
    for (uint64_t w = 0; w < data.size(); w++)
        lanes[stripeLane(g, w)].push_back(data[w]);
    return lanes;
}

/** Interleave per-lane vectors back into striped stream order. */
inline std::vector<Word>
mergeStriped(const SrfGeometry &g, const std::vector<std::vector<Word>> &l)
{
    uint64_t total = 0;
    for (const auto &v : l)
        total += v.size();
    std::vector<Word> out(total);
    std::vector<size_t> cur(g.lanes, 0);
    for (uint64_t w = 0; w < total; w++) {
        uint32_t lane = stripeLane(g, w);
        out[w] = l[lane][cur[lane]++];
    }
    return out;
}

/** Allocate an invocation skeleton with slot bindings + empty traces. */
inline std::shared_ptr<KernelInvocation>
newInvocation(Machine &m, const KernelGraph *graph,
              std::vector<SlotId> slots)
{
    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = graph;
    inv->sched = m.scheduleKernel(*graph);
    inv->slots = std::move(slots);
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    size_t nSlots = graph->streamSlots().size();
    for (auto &t : inv->laneTraces) {
        t.seqWrites.resize(nSlots);
        t.idxReads.resize(nSlots);
        t.idxWrites.resize(nSlots);
    }
    return inv;
}

/** Word view of float data. */
inline std::vector<Word>
floatsToWords(const std::vector<float> &f)
{
    std::vector<Word> w(f.size());
    for (size_t i = 0; i < f.size(); i++)
        w[i] = floatToWord(f[i]);
    return w;
}

inline std::vector<float>
wordsToFloats(const std::vector<Word> &w)
{
    std::vector<float> f(w.size());
    for (size_t i = 0; i < w.size(); i++)
        f[i] = wordToFloat(w[i]);
    return f;
}

} // namespace isrf

#endif // ISRF_WORKLOADS_TRACE_UTIL_H
