/**
 * @file
 * SpMV over CSR: the sparse-matrix workload family (ROADMAP item 1).
 *
 * y = A*x with A in compressed-sparse-row form. The x vector is SRF
 * resident per strip (local diagonal block + condensed out-of-strip
 * columns, the IG strip scheme); on indexed machines each non-zero
 * gathers its x element through the in-lane indexed port when the
 * element happens to live in the processing lane and falls back to the
 * cross-lane switch otherwise — long/wide rows naturally push traffic
 * onto the cross-lane network. The Base machine streams a pre-expanded
 * per-nonzero copy of x from memory; the Cache machine gathers the
 * expansion through the vector cache, capturing column reuse.
 */
#ifndef ISRF_WORKLOADS_SPARSE_H
#define ISRF_WORKLOADS_SPARSE_H

#include "util/mtx.h"
#include "workloads/workload.h"

namespace isrf {

/** Built-in synthetic SpMV dataset workload names. */
const std::vector<std::string> &spmvDatasetNames();

/** Generate the matrix behind a built-in dataset name. */
CsrMatrix spmvDatasetMatrix(const std::string &name, uint64_t seed);

/** Reference y = A*x. */
std::vector<float> spmvReference(const CsrMatrix &a,
                                 const std::vector<float> &x);

/** Run a built-in synthetic dataset (name from spmvDatasetNames()). */
WorkloadResult runSpmv(const std::string &name, const MachineConfig &cfg,
                       const WorkloadOptions &opts);

/**
 * Run SpMV over an arbitrary CSR matrix (external `.mtx` datasets come
 * through here). Throws std::runtime_error when the matrix cannot be
 * strip-mined into the SRF (the sweep driver reports a Failed outcome).
 */
WorkloadResult runSpmvCsr(const std::string &name, const CsrMatrix &csr,
                          const MachineConfig &cfg,
                          const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_SPARSE_H
