#include "workloads/sparse.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

const std::vector<std::string> &
spmvDatasetNames()
{
    static const std::vector<std::string> names = {
        "SpMV Banded", "SpMV Random", "SpMV Power",
    };
    return names;
}

CsrMatrix
spmvDatasetMatrix(const std::string &name, uint64_t seed)
{
    if (name == "SpMV Banded")
        return mtxGenBanded(2048, 4, seed);
    if (name == "SpMV Random")
        return mtxGenUniform(2048, 8, seed);
    if (name == "SpMV Power")
        return mtxGenPowerLaw(2048, 8, 2.2, seed);
    fatal("spmvDatasetMatrix: unknown dataset '%s'", name.c_str());
}

std::vector<float>
spmvReference(const CsrMatrix &a, const std::vector<float> &x)
{
    std::vector<float> y(a.rows, 0.0f);
    for (uint32_t r = 0; r < a.rows; r++) {
        float acc = 0;
        for (uint64_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; k++)
            acc += a.val[k] * x[a.col[k]];
        y[r] = acc;
    }
    return y;
}

namespace {

/**
 * Indexed-machine kernel: per non-zero, read the column index and
 * matrix value sequentially, gather x through whichever indexed port
 * the element lives behind, multiply-accumulate into a carried row sum.
 */
KernelGraph
spmvIdxGraph()
{
    KernelBuilder b("spmv");
    auto cols = b.seqIn("cols");   // x-window index per non-zero
    auto vals = b.seqIn("vals");   // matrix value per non-zero
    auto xloc = b.idxlIn("xloc");  // in-lane view of the x window
    auto xrem = b.idxIn("xrem");   // cross-lane view of the x window
    auto y = b.seqOut("y");

    auto c = b.read(cols);
    auto a = b.read(vals);
    auto xl = b.readIdx(xloc, c);
    auto xr = b.readIdx(xrem, c);
    auto x = b.fadd(xl, xr);
    auto prod = b.fmul(a, x);
    Value cin = b.carryIn();
    Value acc = b.fadd(prod, cin);
    b.write(y, acc);
    b.carryOut(cin, acc, 1);
    return b.build();
}

/** Base/Cache kernel: x arrives pre-expanded as a sequential stream. */
KernelGraph
spmvBaseGraph()
{
    KernelBuilder b("spmv");
    auto xs = b.seqIn("xexp");     // expanded x element per non-zero
    auto vals = b.seqIn("vals");
    auto y = b.seqOut("y");

    auto x = b.read(xs);
    auto a = b.read(vals);
    auto prod = b.fmul(a, x);
    Value cin = b.carryIn();
    Value acc = b.fadd(prod, cin);
    b.write(y, acc);
    b.carryOut(cin, acc, 1);
    return b.build();
}

struct SpmvStrip
{
    uint32_t r0, r1;
    /** Out-of-block columns touched by the strip, condensed. */
    std::vector<uint32_t> extIds;
    std::unordered_map<uint32_t, uint32_t> extIndex;
    /** Per-lane non-zero counts (row -> lane via striped y). */
    std::vector<uint64_t> laneNnz;
};

uint64_t
roundUpTo(uint64_t v, uint64_t q)
{
    return (v + q - 1) / q * q;
}

/** Partition rows into strips of `stripRows`, condensing ext columns. */
std::vector<SpmvStrip>
partitionStrips(const CsrMatrix &csr, const SrfGeometry &g,
                uint32_t stripRows)
{
    std::vector<SpmvStrip> strips;
    for (uint32_t r0 = 0; r0 < csr.rows; r0 += stripRows) {
        SpmvStrip s;
        s.r0 = r0;
        s.r1 = std::min(csr.rows, r0 + stripRows);
        s.laneNnz.assign(g.lanes, 0);
        uint32_t c0 = std::min(s.r0, csr.cols);
        uint32_t c1 = std::min(s.r1, csr.cols);
        for (uint32_t r = s.r0; r < s.r1; r++) {
            uint32_t lane = ((r - s.r0) / g.seqWidth) % g.lanes;
            for (uint64_t k = csr.rowPtr[r]; k < csr.rowPtr[r + 1];
                    k++) {
                s.laneNnz[lane]++;
                uint32_t c = csr.col[k];
                if ((c < c0 || c >= c1) && !s.extIndex.count(c)) {
                    s.extIndex[c] =
                        static_cast<uint32_t>(s.extIds.size());
                    s.extIds.push_back(c);
                }
            }
        }
        strips.push_back(std::move(s));
    }
    return strips;
}

} // namespace

WorkloadResult
runSpmv(const std::string &name, const MachineConfig &cfg,
        const WorkloadOptions &opts)
{
    return runSpmvCsr(name, spmvDatasetMatrix(name, opts.seed), cfg,
                      opts);
}

WorkloadResult
runSpmvCsr(const std::string &name, const CsrMatrix &csr,
           const MachineConfig &machineCfg, const WorkloadOptions &opts)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride) {
        cfg.inLaneSeparation = opts.separationOverride;
        cfg.crossLaneSeparation = opts.separationOverride;
    }
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = name;

    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const bool cached = cfg.mem.cacheEnabled;

    if (csr.rows == 0 || csr.cols == 0)
        throw std::runtime_error("SpMV: empty matrix");

    Rng rng(opts.seed ^ 0x5bull);
    std::vector<float> x(csr.cols);
    for (auto &v : x)
        v = rng.uniformf(0.1f, 1.0f);
    std::vector<float> ref = spmvReference(csr, x);

    // --- strip sizing: shrink until the double-buffered working set
    // fits the per-lane SRF budget ---------------------------------
    const uint32_t quantum = g.lanes * g.seqWidth;
    const uint64_t laneBudget = g.laneWords - 128;
    uint32_t stripRows = static_cast<uint32_t>(std::min<uint64_t>(
        roundUpTo(csr.rows, quantum), 2048));
    std::vector<SpmvStrip> strips;
    uint64_t maxWindow = 0, maxLaneNnz = 0;
    while (true) {
        strips = partitionStrips(csr, g, stripRows);
        maxWindow = maxLaneNnz = 0;
        for (const auto &s : strips) {
            uint32_t c0 = std::min(s.r0, csr.cols);
            uint32_t c1 = std::min(s.r1, csr.cols);
            maxWindow = std::max<uint64_t>(
                maxWindow, (c1 - c0) + s.extIds.size());
            for (uint64_t n : s.laneNnz)
                maxLaneNnz = std::max(maxLaneNnz, n);
        }
        // Per-lane words, double buffered: two per-nonzero PerLane
        // streams (cols+vals or xexp+vals), the x window (indexed
        // only), and the y output strip.
        uint64_t perNnz = roundUpTo(maxLaneNnz + 8, g.seqWidth);
        uint64_t window = indexed
            ? roundUpTo(roundUpTo(maxWindow, g.lanes) / g.lanes,
                        g.seqWidth)
            : 0;
        uint64_t yWords = roundUpTo(
            roundUpTo(stripRows, g.lanes) / g.lanes, g.seqWidth);
        uint64_t need = 2 * (2 * perNnz + window + yWords);
        if (need <= laneBudget)
            break;
        if (stripRows <= quantum)
            throw std::runtime_error(strprintf(
                "SpMV '%s': matrix does not strip-mine into the SRF "
                "(%llu words/lane needed at the minimum strip, %llu "
                "available)", name.c_str(),
                static_cast<unsigned long long>(need),
                static_cast<unsigned long long>(laneBudget)));
        stripRows = std::max(quantum, stripRows / 2 / quantum * quantum);
    }
    res.extra["strip_rows"] = stripRows;
    res.extra["strips"] = static_cast<double>(strips.size());
    res.extra["nnz"] = static_cast<double>(csr.nnz());

    // --- DRAM layout: x, y, then per-strip per-nonzero streams ------
    const uint64_t xAddr = 0;
    const uint64_t yAddr = xAddr + csr.cols;
    uint64_t cursor = yAddr + csr.rows;
    m.mem().dram().fill(xAddr, floatsToWords(x));

    // Per strip: lane-major window-index words (indexed) or expanded x
    // values (Base), then lane-major matrix values. Lane-major order
    // matches the PerLane slot fill.
    std::vector<uint64_t> streamAddrA(strips.size());
    std::vector<uint64_t> streamAddrB(strips.size());
    std::vector<std::vector<uint32_t>> stripGatherCols(strips.size());
    for (size_t si = 0; si < strips.size(); si++) {
        const SpmvStrip &s = strips[si];
        uint32_t c0 = std::min(s.r0, csr.cols);
        uint32_t c1 = std::min(s.r1, csr.cols);
        std::vector<Word> first, second;
        for (uint32_t lane = 0; lane < g.lanes; lane++) {
            for (uint32_t r = s.r0; r < s.r1; r++) {
                if (((r - s.r0) / g.seqWidth) % g.lanes != lane)
                    continue;
                for (uint64_t k = csr.rowPtr[r]; k < csr.rowPtr[r + 1];
                        k++) {
                    uint32_t c = csr.col[k];
                    if (indexed) {
                        uint32_t w = (c >= c0 && c < c1)
                            ? c - c0
                            : (c1 - c0) + s.extIndex.at(c);
                        first.push_back(w);
                    } else {
                        first.push_back(floatToWord(x[c]));
                        stripGatherCols[si].push_back(c);
                    }
                    second.push_back(floatToWord(csr.val[k]));
                }
            }
        }
        streamAddrA[si] = cursor;
        m.mem().dram().fill(cursor, first);
        cursor += first.size();
        streamAddrB[si] = cursor;
        m.mem().dram().fill(cursor, second);
        cursor += second.size();
    }

    std::vector<std::unique_ptr<KernelGraph>> graphs;
    graphs.push_back(std::make_unique<KernelGraph>(
        indexed ? spmvIdxGraph() : spmvBaseGraph()));
    const KernelGraph *kg = graphs[0].get();

    StreamProgram prog(m);
    const uint64_t windowWords = std::max<uint64_t>(maxWindow, quantum);
    const uint64_t perNnzWords = maxLaneNnz + 8;
    SlotId xwA = -1, xwB = -1, xlocA = -1, xlocB = -1;
    if (indexed) {
        // The x window: one SRF region, two indexed views. The base
        // slot is the cross-lane view (global record indices); the
        // alias restricts to the in-lane ports (lane-local indices).
        xwA = prog.addStream("xwinA", windowWords, StreamLayout::Striped,
                             StreamDir::In, true, true);
        xwB = prog.addStream("xwinB", windowWords, StreamLayout::Striped,
                             StreamDir::In, true, true);
        xlocA = prog.addStreamAlias("xwinAloc", xwA, false);
        xlocB = prog.addStreamAlias("xwinBloc", xwB, false);
    }
    SlotId firstA = prog.addStream("nzA", perNnzWords,
                                   StreamLayout::PerLane);
    SlotId firstB = prog.addStream("nzB", perNnzWords,
                                   StreamLayout::PerLane);
    SlotId valsA = prog.addStream("valsA", perNnzWords,
                                  StreamLayout::PerLane);
    SlotId valsB = prog.addStream("valsB", perNnzWords,
                                  StreamLayout::PerLane);
    SlotId yA = prog.addStream("yA", stripRows);
    SlotId yB = prog.addStream("yB", stripRows);

    uint64_t inLaneReads = 0, crossReads = 0;
    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        SlotId xwCur = xwA, xwNxt = xwB;
        SlotId xlCur = xlocA, xlNxt = xlocB;
        SlotId fCur = firstA, fNxt = firstB;
        SlotId vCur = valsA, vNxt = valsB;
        SlotId yCur = yA, yNxt = yB;
        for (size_t si = 0; si < strips.size(); si++) {
            const SpmvStrip &s = strips[si];
            uint32_t c0 = std::min(s.r0, csr.cols);
            uint32_t c1 = std::min(s.r1, csr.cols);
            uint64_t stripNnz = 0;
            for (uint64_t n : s.laneNnz)
                stripNnz += n;

            if (indexed) {
                if (c1 > c0)
                    prog.load(xwCur, xAddr + c0, cached, c1 - c0);
                if (!s.extIds.empty())
                    prog.gather(xwCur, xAddr, s.extIds, 1, cached,
                                c1 - c0);
                prog.load(fCur, streamAddrA[si], false, stripNnz);
            } else if (cached) {
                // Vector-cache machine: expand x through the cache,
                // capturing intra- and inter-strip column reuse.
                prog.gather(fCur, xAddr, stripGatherCols[si], 1, true);
            } else {
                prog.load(fCur, streamAddrA[si], false, stripNnz);
            }
            prog.load(vCur, streamAddrB[si], false, stripNnz);

            auto inv = newInvocation(m, kg,
                indexed ? std::vector<SlotId>{fCur, vCur, xlCur, xwCur,
                                              yCur}
                        : std::vector<SlotId>{fCur, vCur, yCur});
            const size_t ySlot = indexed ? 4 : 2;
            for (uint32_t lane = 0; lane < g.lanes; lane++) {
                auto &tr = inv->laneTraces[lane];
                std::vector<Word> yWords;
                for (uint32_t r = s.r0; r < s.r1; r++) {
                    if (((r - s.r0) / g.seqWidth) % g.lanes != lane)
                        continue;
                    float acc = 0;
                    for (uint64_t k = csr.rowPtr[r];
                            k < csr.rowPtr[r + 1]; k++) {
                        uint32_t c = csr.col[k];
                        acc += csr.val[k] * x[c];
                        if (!indexed)
                            continue;
                        uint32_t w = (c >= c0 && c < c1)
                            ? c - c0
                            : (c1 - c0) + s.extIndex.at(c);
                        if ((w / g.seqWidth) % g.lanes == lane) {
                            // The element lives in this lane: lane-
                            // local word index via the in-lane port.
                            uint32_t local =
                                (w / (g.seqWidth * g.lanes)) *
                                    g.seqWidth + w % g.seqWidth;
                            tr.idxReads[2].push_back(local);
                            inLaneReads++;
                        } else {
                            tr.idxReads[3].push_back(w);
                            crossReads++;
                        }
                    }
                    yWords.push_back(floatToWord(acc));
                }
                tr.iterations = std::max<uint64_t>(s.laneNnz[lane],
                                                   yWords.size());
                tr.seqWrites[ySlot] = std::move(yWords);
            }
            inv->finalize();
            prog.kernel(inv);
            prog.store(yCur, yAddr + s.r0, false, s.r1 - s.r0);
            std::swap(xwCur, xwNxt);
            std::swap(xlCur, xlNxt);
            std::swap(fCur, fNxt);
            std::swap(vCur, vNxt);
            std::swap(yCur, yNxt);
        }
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    std::vector<float> got = wordsToFloats(
        m.mem().dram().dump(yAddr, csr.rows));
    bool ok = true;
    for (uint32_t r = 0; r < csr.rows && ok; r++) {
        if (std::abs(got[r] - ref[r]) > 1e-3f * (std::abs(ref[r]) + 1))
            ok = false;
    }
    res.correct = ok;
    if (indexed && (inLaneReads + crossReads) > 0)
        res.extra["inlane_frac"] =
            static_cast<double>(inLaneReads) /
            static_cast<double>(inLaneReads + crossReads);
    res.extra["kernel_ii"] = m.scheduleKernel(*kg).ii;
    return res;
}

} // namespace isrf
