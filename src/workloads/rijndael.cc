#include "workloads/rijndael.h"

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

uint8_t
aesGfMul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; i++) {
        if (b & 1)
            p ^= a;
        bool hi = a & 0x80;
        a = static_cast<uint8_t>(a << 1);
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

namespace {

uint8_t
gfInv(uint8_t a)
{
    if (a == 0)
        return 0;
    for (int b = 1; b < 256; b++) {
        if (aesGfMul(a, static_cast<uint8_t>(b)) == 1)
            return static_cast<uint8_t>(b);
    }
    panic("gfInv: no inverse for %u", a);
}

uint8_t
rotl8(uint8_t v, int n)
{
    return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
}

} // namespace

const std::array<uint8_t, 256> &
aesSbox()
{
    static const std::array<uint8_t, 256> sbox = [] {
        std::array<uint8_t, 256> t{};
        for (int x = 0; x < 256; x++) {
            uint8_t b = gfInv(static_cast<uint8_t>(x));
            t[x] = static_cast<uint8_t>(b ^ rotl8(b, 1) ^ rotl8(b, 2) ^
                                        rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63);
        }
        return t;
    }();
    return sbox;
}

const std::array<uint32_t, 256> &
aesTe(int i)
{
    static const std::array<std::array<uint32_t, 256>, 4> tables = [] {
        std::array<std::array<uint32_t, 256>, 4> t{};
        const auto &sb = aesSbox();
        for (int x = 0; x < 256; x++) {
            uint32_t s = sb[x];
            uint32_t s2 = aesGfMul(static_cast<uint8_t>(s), 2);
            uint32_t s3 = s2 ^ s;
            t[0][x] = (s2 << 24) | (s << 16) | (s << 8) | s3;
            t[1][x] = (s3 << 24) | (s2 << 16) | (s << 8) | s;
            t[2][x] = (s << 24) | (s3 << 16) | (s2 << 8) | s;
            t[3][x] = (s << 24) | (s << 16) | (s3 << 8) | s2;
        }
        return t;
    }();
    return tables[i];
}

std::array<uint32_t, 44>
aesExpandKey128(const std::array<uint8_t, 16> &key)
{
    std::array<uint32_t, 44> w{};
    const auto &sb = aesSbox();
    for (int i = 0; i < 4; i++) {
        w[i] = (static_cast<uint32_t>(key[4 * i]) << 24) |
            (static_cast<uint32_t>(key[4 * i + 1]) << 16) |
            (static_cast<uint32_t>(key[4 * i + 2]) << 8) |
            key[4 * i + 3];
    }
    uint8_t rcon = 1;
    for (int i = 4; i < 44; i++) {
        uint32_t t = w[i - 1];
        if (i % 4 == 0) {
            t = (t << 8) | (t >> 24);  // RotWord
            t = (static_cast<uint32_t>(sb[(t >> 24) & 0xff]) << 24) |
                (static_cast<uint32_t>(sb[(t >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(sb[(t >> 8) & 0xff]) << 8) |
                sb[t & 0xff];
            t ^= static_cast<uint32_t>(rcon) << 24;
            rcon = aesGfMul(rcon, 2);
        }
        w[i] = w[i - 4] ^ t;
    }
    return w;
}

std::array<uint8_t, 16>
aesEncryptBlock128(const std::array<uint32_t, 44> &rk,
                   const std::array<uint8_t, 16> &plain,
                   std::vector<std::array<uint8_t, 16>> *idxTrace,
                   std::vector<std::array<uint32_t, 4>> *stateTrace)
{
    uint32_t s[4];
    for (int i = 0; i < 4; i++) {
        s[i] = (static_cast<uint32_t>(plain[4 * i]) << 24) |
            (static_cast<uint32_t>(plain[4 * i + 1]) << 16) |
            (static_cast<uint32_t>(plain[4 * i + 2]) << 8) |
            plain[4 * i + 3];
        s[i] ^= rk[i];
    }
    auto record = [&](const std::array<uint8_t, 16> &idx,
                      const uint32_t t[4]) {
        if (idxTrace)
            idxTrace->push_back(idx);
        if (stateTrace)
            stateTrace->push_back({t[0], t[1], t[2], t[3]});
    };

    for (int r = 1; r <= 9; r++) {
        std::array<uint8_t, 16> idx{};
        for (int i = 0; i < 4; i++) {
            idx[0 + i] = static_cast<uint8_t>(s[i] >> 24);
            idx[4 + i] = static_cast<uint8_t>(s[(i + 1) % 4] >> 16);
            idx[8 + i] = static_cast<uint8_t>(s[(i + 2) % 4] >> 8);
            idx[12 + i] = static_cast<uint8_t>(s[(i + 3) % 4]);
        }
        uint32_t t[4];
        for (int i = 0; i < 4; i++) {
            t[i] = aesTe(0)[idx[0 + i]] ^ aesTe(1)[idx[4 + i]] ^
                aesTe(2)[idx[8 + i]] ^ aesTe(3)[idx[12 + i]] ^
                rk[4 * r + i];
        }
        record(idx, t);
        for (int i = 0; i < 4; i++)
            s[i] = t[i];
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (S-box only).
    const auto &sb = aesSbox();
    std::array<uint8_t, 16> idx{};
    uint32_t t[4];
    for (int i = 0; i < 4; i++) {
        idx[0 + i] = static_cast<uint8_t>(s[i] >> 24);
        idx[4 + i] = static_cast<uint8_t>(s[(i + 1) % 4] >> 16);
        idx[8 + i] = static_cast<uint8_t>(s[(i + 2) % 4] >> 8);
        idx[12 + i] = static_cast<uint8_t>(s[(i + 3) % 4]);
    }
    for (int i = 0; i < 4; i++) {
        t[i] = (static_cast<uint32_t>(sb[idx[0 + i]]) << 24) |
            (static_cast<uint32_t>(sb[idx[4 + i]]) << 16) |
            (static_cast<uint32_t>(sb[idx[8 + i]]) << 8) |
            sb[idx[12 + i]];
        t[i] ^= rk[40 + i];
    }
    record(idx, t);

    std::array<uint8_t, 16> out{};
    for (int i = 0; i < 4; i++) {
        out[4 * i] = static_cast<uint8_t>(t[i] >> 24);
        out[4 * i + 1] = static_cast<uint8_t>(t[i] >> 16);
        out[4 * i + 2] = static_cast<uint8_t>(t[i] >> 8);
        out[4 * i + 3] = static_cast<uint8_t>(t[i]);
    }
    return out;
}

std::vector<std::array<uint8_t, 16>>
aesCbcEncrypt128(const std::array<uint8_t, 16> &key,
                 const std::array<uint8_t, 16> &iv,
                 const std::vector<std::array<uint8_t, 16>> &blocks)
{
    auto rk = aesExpandKey128(key);
    std::vector<std::array<uint8_t, 16>> out;
    std::array<uint8_t, 16> prev = iv;
    for (const auto &blk : blocks) {
        std::array<uint8_t, 16> x{};
        for (int i = 0; i < 16; i++)
            x[i] = static_cast<uint8_t>(blk[i] ^ prev[i]);
        prev = aesEncryptBlock128(rk, x);
        out.push_back(prev);
    }
    return out;
}

KernelGraph
rijndaelRoundIdxGraph()
{
    KernelBuilder b("rijndael");
    auto in = b.seqIn("in");
    StreamRef te[4] = {b.idxlIn("te0"), b.idxlIn("te1"), b.idxlIn("te2"),
                       b.idxlIn("te3")};
    auto out = b.seqOut("out");

    // Round state carried in local register files across iterations
    // (one iteration = one AES round of this lane's CBC chain).
    Value s[4];
    for (int i = 0; i < 4; i++)
        s[i] = b.carryIn();
    auto pin = b.read(in);  // amortized plaintext injection

    Value v[4];
    for (int i = 0; i < 4; i++) {
        Value x0 = b.readIdx(te[0], b.ishr(s[i], b.constInt(24)));
        Value x1 = b.readIdx(te[1],
                             b.ishr(s[(i + 1) % 4], b.constInt(16)));
        Value x2 = b.readIdx(te[2],
                             b.ishr(s[(i + 2) % 4], b.constInt(8)));
        Value x3 = b.readIdx(te[3], s[(i + 3) % 4]);
        Value t = b.ixor(b.ixor(x0, x1), b.ixor(x2, x3));
        v[i] = b.ixor(t, b.constInt(0x5a5a5a5a));  // + round key
    }
    for (int i = 0; i < 4; i++)
        b.carryOut(s[i], v[i], 1);
    b.write(out, b.ixor(v[0], pin));  // amortized ciphertext emission
    return b.build();
}

KernelGraph
rijndaelRoundBaseGraph(bool firstRound, bool lastRound)
{
    KernelBuilder b("rijndael");
    Value st[4];
    if (firstRound) {
        auto in = b.seqIn("plain");
        for (int i = 0; i < 4; i++)
            st[i] = b.ixor(b.read(in), b.constInt(0x11111111));  // whiten
    } else {
        auto sin = b.seqIn("state_in");
        auto tv = b.seqIn("tvals");
        Value t[4];
        for (int i = 0; i < 4; i++) {
            Value x0 = b.read(tv);
            Value x1 = b.read(tv);
            Value x2 = b.read(tv);
            Value x3 = b.read(tv);
            t[i] = b.ixor(b.ixor(x0, x1), b.ixor(x2, x3));
        }
        for (int i = 0; i < 4; i++)
            st[i] = b.ixor(b.ixor(b.read(sin), t[i]),
                           b.constInt(0x22222222));
    }
    if (lastRound) {
        auto out = b.seqOut("cipher");
        for (int i = 0; i < 4; i++)
            b.write(out, st[i]);
    } else {
        auto sout = b.seqOut("state_out");
        auto iout = b.seqOut("idx_out");
        for (int i = 0; i < 4; i++)
            b.write(sout, st[i]);
        // Emit the 16 lookup indices for the next round's gather.
        for (int i = 0; i < 4; i++) {
            b.write(iout, b.ishr(st[i], b.constInt(24)));
            b.write(iout, b.ishr(st[(i + 1) % 4], b.constInt(16)));
            b.write(iout, b.ishr(st[(i + 2) % 4], b.constInt(8)));
            b.write(iout, st[(i + 3) % 4]);
        }
    }
    return b.build();
}

namespace {

/** Pack 16 bytes into 4 big-endian words. */
std::array<Word, 4>
blockWords(const std::array<uint8_t, 16> &blk)
{
    std::array<Word, 4> w{};
    for (int i = 0; i < 4; i++) {
        w[i] = (static_cast<Word>(blk[4 * i]) << 24) |
            (static_cast<Word>(blk[4 * i + 1]) << 16) |
            (static_cast<Word>(blk[4 * i + 2]) << 8) | blk[4 * i + 3];
    }
    return w;
}

} // namespace

WorkloadResult
runRijndael(const MachineConfig &machineCfg, const WorkloadOptions &opts)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride)
        cfg.inLaneSeparation = opts.separationOverride;
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = "Rijndael";

    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const bool cached = cfg.mem.cacheEnabled;
    const RijndaelParams params;
    const uint32_t B = params.blocksPerLane;
    const uint32_t lanes = g.lanes;
    const uint32_t totalBlocks = B * lanes;

    // --- key, plaintext, and functional encryption with traces ---
    std::array<uint8_t, 16> key{};
    Rng rng(opts.seed);
    for (auto &k : key)
        k = static_cast<uint8_t>(rng.below(256));
    auto rk = aesExpandKey128(key);

    std::vector<std::vector<std::array<uint8_t, 16>>> plain(lanes);
    std::vector<std::vector<std::array<uint8_t, 16>>> cipher(lanes);
    std::vector<std::vector<std::array<uint8_t, 16>>> idxTrace(lanes);
    std::vector<std::vector<std::array<uint32_t, 4>>> stateTrace(lanes);
    for (uint32_t l = 0; l < lanes; l++) {
        std::array<uint8_t, 16> prev{};  // per-lane IV
        for (int i = 0; i < 16; i++)
            prev[i] = static_cast<uint8_t>(l * 16 + i);
        for (uint32_t b = 0; b < B; b++) {
            std::array<uint8_t, 16> p{};
            for (auto &x : p)
                x = static_cast<uint8_t>(rng.below(256));
            plain[l].push_back(p);
            std::array<uint8_t, 16> x{};
            for (int i = 0; i < 16; i++)
                x[i] = static_cast<uint8_t>(p[i] ^ prev[i]);
            prev = aesEncryptBlock128(rk, x, &idxTrace[l],
                                      &stateTrace[l]);
            cipher[l].push_back(prev);
        }
    }

    // --- DRAM layout ---
    const uint64_t tableAddr = 0;  // 5 x 256 words
    const uint64_t plainAddr = 4096;
    const uint64_t cipherAddr = plainAddr + totalBlocks * 4;
    {
        std::vector<Word> tbl(5 * 256);
        for (int t = 0; t < 4; t++)
            for (int x = 0; x < 256; x++)
                tbl[t * 256 + x] = aesTe(t)[x];
        for (int x = 0; x < 256; x++)
            tbl[4 * 256 + x] = aesSbox()[x];
        m.mem().dram().fill(tableAddr, tbl);

        std::vector<Word> pw;
        for (uint32_t l = 0; l < lanes; l++)
            for (uint32_t b = 0; b < B; b++)
                for (Word w : blockWords(plain[l][b]))
                    pw.push_back(w);
        m.mem().dram().fill(plainAddr, pw);
    }

    StreamProgram prog(m);
    SlotId plainSlot = prog.addStream("plain", B * 4,
                                      StreamLayout::PerLane);
    SlotId cipherSlot = prog.addStream("cipher", B * 4,
                                       StreamLayout::PerLane);

    std::vector<std::unique_ptr<KernelGraph>> graphs;

    if (indexed) {
        // Replicated T-tables, one slot per table stream.
        SlotId te[4];
        for (int t = 0; t < 4; t++) {
            te[t] = prog.addStream("te" + std::to_string(t), 256,
                                   StreamLayout::PerLane, StreamDir::In,
                                   true);
            std::vector<Word> repData;
            for (uint32_t l = 0; l < lanes; l++)
                for (int x = 0; x < 256; x++)
                    repData.push_back(aesTe(t)[x]);
            prog.fillStream(te[t], repData);
        }
        // Timing/traffic of the one-time table broadcast load.
        SlotId tload = prog.addStream("tload", 5 * 256);
        prog.load(tload, tableAddr);

        graphs.push_back(std::make_unique<KernelGraph>(
            rijndaelRoundIdxGraph()));
        const KernelGraph *kg = graphs.back().get();

        for (uint32_t rep = 0; rep < opts.repeats; rep++) {
            prog.load(plainSlot, plainAddr);
            auto inv = newInvocation(m, kg,
                {plainSlot, te[0], te[1], te[2], te[3], cipherSlot});
            for (uint32_t l = 0; l < lanes; l++) {
                auto &tr = inv->laneTraces[l];
                tr.iterations = static_cast<uint64_t>(B) * 10;
                for (uint32_t b = 0; b < B; b++) {
                    for (uint32_t r = 0; r < 10; r++) {
                        const auto &idx = idxTrace[l][b * 10 + r];
                        for (int t = 0; t < 4; t++)
                            for (int i = 0; i < 4; i++)
                                tr.idxReads[1 + t].push_back(
                                    idx[4 * t + i]);
                    }
                    for (Word w : blockWords(cipher[l][b]))
                        tr.seqWrites[5].push_back(w);
                }
            }
            inv->finalize();
            prog.kernel(inv);
            prog.store(cipherSlot, cipherAddr);
        }
    } else {
        // Base/Cache: per-round memory round trips.
        graphs.push_back(std::make_unique<KernelGraph>(
            rijndaelRoundBaseGraph(true, false)));
        graphs.push_back(std::make_unique<KernelGraph>(
            rijndaelRoundBaseGraph(false, false)));
        graphs.push_back(std::make_unique<KernelGraph>(
            rijndaelRoundBaseGraph(false, true)));
        const KernelGraph *kFirst = graphs[0].get();
        const KernelGraph *kMid = graphs[1].get();
        const KernelGraph *kLast = graphs[2].get();

        SlotId stateA = prog.addStream("stateA", B * 4,
                                       StreamLayout::PerLane);
        SlotId stateB = prog.addStream("stateB", B * 4,
                                       StreamLayout::PerLane);
        SlotId tvalsA = prog.addStream("tvalsA", B * 16,
                                       StreamLayout::PerLane);
        SlotId tvalsB = prog.addStream("tvalsB", B * 16,
                                       StreamLayout::PerLane);

        auto gatherIdx = [&](uint32_t r) {
            std::vector<uint32_t> gi;
            gi.reserve(static_cast<size_t>(totalBlocks) * 16);
            for (uint32_t l = 0; l < lanes; l++) {
                for (uint32_t b = 0; b < B; b++) {
                    const auto &idx = idxTrace[l][b * 10 + (r - 1)];
                    for (int t = 0; t < 4; t++) {
                        uint32_t tblBase = (r == 10)
                            ? 4u * 256u  // final round: S-box table
                            : static_cast<uint32_t>(t) * 256u;
                        for (int i = 0; i < 4; i++)
                            gi.push_back(tblBase + idx[4 * t + i]);
                    }
                }
            }
            return gi;
        };

        for (uint32_t rep = 0; rep < opts.repeats; rep++) {
            prog.load(plainSlot, plainAddr);
            ProgOpId prevKernel;
            {
                auto inv = newInvocation(
                    m, kFirst, {plainSlot, stateA, tvalsB});
                for (uint32_t l = 0; l < lanes; l++) {
                    auto &tr = inv->laneTraces[l];
                    tr.iterations = B;
                    for (uint32_t b = 0; b < B; b++) {
                        for (int i = 0; i < 4; i++)
                            tr.seqWrites[1].push_back(0);
                        const auto &idx = idxTrace[l][b * 10];
                        for (int i = 0; i < 16; i++)
                            tr.seqWrites[2].push_back(idx[i]);
                    }
                }
                inv->finalize();
                prevKernel = prog.kernel(inv);
            }
            SlotId sCur = stateA, sNxt = stateB;
            SlotId tCur = tvalsA, tNxt = tvalsB;
            for (uint32_t r = 1; r <= 10; r++) {
                ProgOpId gid = prog.gather(tCur, tableAddr,
                                           gatherIdx(r), 1, cached);
                // The gather consumes indices computed by the previous
                // kernel: serialize the per-round memory round trip.
                prog.dependsOn(gid, prevKernel);

                bool last = r == 10;
                auto inv = newInvocation(m, last ? kLast : kMid,
                    last
                        ? std::vector<SlotId>{sCur, tCur, cipherSlot}
                        : std::vector<SlotId>{sCur, tCur, sNxt, tNxt});
                for (uint32_t l = 0; l < lanes; l++) {
                    auto &tr = inv->laneTraces[l];
                    tr.iterations = B;
                    for (uint32_t b = 0; b < B; b++) {
                        if (last) {
                            for (Word w : blockWords(cipher[l][b]))
                                tr.seqWrites[2].push_back(w);
                        } else {
                            const auto &st =
                                stateTrace[l][b * 10 + (r - 1)];
                            for (int i = 0; i < 4; i++)
                                tr.seqWrites[2].push_back(st[i]);
                            const auto &idx = idxTrace[l][b * 10 + r];
                            for (int i = 0; i < 16; i++)
                                tr.seqWrites[3].push_back(idx[i]);
                        }
                    }
                }
                inv->finalize();
                prevKernel = prog.kernel(inv);
                std::swap(sCur, sNxt);
                std::swap(tCur, tNxt);
            }
            prog.store(cipherSlot, cipherAddr);
        }
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    // --- validation: DRAM ciphertext vs reference CBC ---
    std::vector<Word> got =
        m.mem().dram().dump(cipherAddr, static_cast<uint64_t>(
            totalBlocks) * 4);
    bool ok = true;
    size_t w = 0;
    for (uint32_t l = 0; l < lanes && ok; l++) {
        std::array<uint8_t, 16> iv{};
        for (int i = 0; i < 16; i++)
            iv[i] = static_cast<uint8_t>(l * 16 + i);
        auto ref = aesCbcEncrypt128(key, iv, plain[l]);
        for (uint32_t b = 0; b < B && ok; b++) {
            auto expect = blockWords(ref[b]);
            for (int i = 0; i < 4; i++) {
                if (got[w] != expect[i])
                    ok = false;
                w++;
            }
        }
    }
    res.correct = ok;
    return res;
}

} // namespace isrf
