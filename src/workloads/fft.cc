#include "workloads/fft.h"

#include <cmath>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

uint32_t
bitReverse(uint32_t v, uint32_t bits)
{
    uint32_t r = 0;
    for (uint32_t i = 0; i < bits; i++)
        r |= ((v >> i) & 1u) << (bits - 1 - i);
    return r;
}

std::vector<Cplx>
fftDifStageRows(const std::vector<Cplx> &a, uint32_t n, uint32_t stage)
{
    std::vector<Cplx> out = a;
    uint32_t rows = static_cast<uint32_t>(a.size()) / n;
    uint32_t blockSize = n >> stage;
    uint32_t half = blockSize / 2;
    for (uint32_t r = 0; r < rows; r++) {
        for (uint32_t b = 0; b < n; b += blockSize) {
            for (uint32_t i = 0; i < half; i++) {
                Cplx u = a[r * n + b + i];
                Cplx v = a[r * n + b + i + half];
                float ang = -2.0f * static_cast<float>(M_PI) *
                    static_cast<float>(i) / static_cast<float>(blockSize);
                Cplx w(std::cos(ang), std::sin(ang));
                out[r * n + b + i] = u + v;
                out[r * n + b + i + half] = (u - v) * w;
            }
        }
    }
    return out;
}

std::vector<Cplx>
fft1d(std::vector<Cplx> a)
{
    uint32_t n = static_cast<uint32_t>(a.size());
    uint32_t bits = 0;
    while ((1u << bits) < n)
        bits++;
    if ((1u << bits) != n)
        panic("fft1d: size %u not a power of two", n);
    for (uint32_t s = 0; s < bits; s++)
        a = fftDifStageRows(a, n, s);
    std::vector<Cplx> out(n);
    for (uint32_t j = 0; j < n; j++)
        out[j] = a[bitReverse(j, bits)];
    return out;
}

std::vector<Cplx>
dft1dReference(const std::vector<Cplx> &a)
{
    size_t n = a.size();
    std::vector<Cplx> out(n);
    for (size_t k = 0; k < n; k++) {
        Cplx acc(0, 0);
        for (size_t j = 0; j < n; j++) {
            double ang = -2.0 * M_PI * static_cast<double>(k * j) /
                static_cast<double>(n);
            acc += a[j] * Cplx(static_cast<float>(std::cos(ang)),
                               static_cast<float>(std::sin(ang)));
        }
        out[k] = acc;
    }
    return out;
}

std::vector<Cplx>
fft2dReference(const std::vector<Cplx> &a, uint32_t n)
{
    // Rows ...
    std::vector<Cplx> m(a.size());
    for (uint32_t r = 0; r < n; r++) {
        std::vector<Cplx> row(a.begin() + r * n, a.begin() + (r + 1) * n);
        std::vector<Cplx> f = fft1d(std::move(row));
        for (uint32_t v = 0; v < n; v++)
            m[r * n + v] = f[v];
    }
    // ... then columns.
    std::vector<Cplx> out(a.size());
    for (uint32_t v = 0; v < n; v++) {
        std::vector<Cplx> col(n);
        for (uint32_t r = 0; r < n; r++)
            col[r] = m[r * n + v];
        std::vector<Cplx> f = fft1d(std::move(col));
        for (uint32_t u = 0; u < n; u++)
            out[u * n + v] = f[u];
    }
    return out;
}

KernelGraph
fftStageSeqGraph()
{
    KernelBuilder b("fft2d");
    auto in = b.seqIn("in");
    auto out = b.seqOut("out");
    auto ar = b.read(in);
    auto ai = b.read(in);
    auto br = b.read(in);
    auto bi = b.read(in);
    auto ur = b.fadd(ar, br);
    auto ui = b.fadd(ai, bi);
    auto tr = b.fsub(ar, br);
    auto ti = b.fsub(ai, bi);
    // Twiddles live in local register files (kernel locality, §2).
    auto wr = b.constFloat(0.92388f);
    auto wi = b.constFloat(-0.38268f);
    auto vr = b.fsub(b.fmul(tr, wr), b.fmul(ti, wi));
    auto vi = b.fadd(b.fmul(tr, wi), b.fmul(ti, wr));
    b.write(out, ur);
    b.write(out, ui);
    b.write(out, vr);
    b.write(out, vi);
    return b.build();
}

KernelGraph
fftStageIdxGraph()
{
    KernelBuilder b("fft2d");
    auto in = b.idxlIn("in");
    auto out = b.seqOut("out");
    // Column-walk index computation from the iteration counter.
    auto it = b.iterIdx();
    auto rowIdx = b.ishr(it, b.constInt(5));
    auto i1 = b.iadd(b.ishl(rowIdx, b.constInt(3)), it);
    auto i2 = b.iadd(i1, b.constInt(8 * 32));
    auto p1 = b.readIdx(in, i1);  // record: (re, im)
    auto p2 = b.readIdx(in, i2);
    // Butterfly on the two complex records. The record read yields one
    // dataflow handle; both words of the record ride the same transfer
    // (the address FIFO's head counter expands it, §4.4).
    auto ur = b.fadd(p1, p2);
    auto ui = b.fadd(p1, p2);
    auto tr = b.fsub(p1, p2);
    auto ti = b.fsub(p1, p2);
    auto wr = b.constFloat(0.92388f);
    auto wi = b.constFloat(-0.38268f);
    auto vr = b.fsub(b.fmul(tr, wr), b.fmul(ti, wi));
    auto vi = b.fadd(b.fmul(tr, wi), b.fmul(ti, wr));
    b.write(out, ur);
    b.write(out, ui);
    b.write(out, vr);
    b.write(out, vi);
    return b.build();
}

namespace {

std::vector<Word>
cplxToWords(const std::vector<Cplx> &c)
{
    std::vector<Word> w(c.size() * 2);
    for (size_t i = 0; i < c.size(); i++) {
        w[2 * i] = floatToWord(c[i].real());
        w[2 * i + 1] = floatToWord(c[i].imag());
    }
    return w;
}

std::vector<Cplx>
wordsToCplx(const std::vector<Word> &w)
{
    std::vector<Cplx> c(w.size() / 2);
    for (size_t i = 0; i < c.size(); i++)
        c[i] = Cplx(wordToFloat(w[2 * i]), wordToFloat(w[2 * i + 1]));
    return c;
}

/** Source columns owned by a lane under m-word striping. */
std::vector<uint32_t>
laneColumns(uint32_t lane, uint32_t n, const SrfGeometry &g)
{
    std::vector<uint32_t> cols;
    uint32_t pairsPerBlock = g.seqWidth / 2;  // complex per m-word block
    for (uint32_t j = 0; j < n; j++) {
        if ((j / pairsPerBlock) % g.lanes == lane)
            cols.push_back(j);
    }
    return cols;
}

/** DIF stage applied to one column vector. */
std::vector<Cplx>
difStageVec(const std::vector<Cplx> &col, uint32_t stage)
{
    return fftDifStageRows(col, static_cast<uint32_t>(col.size()), stage);
}

} // namespace

WorkloadResult
runFft2d(const MachineConfig &cfg, const WorkloadOptions &opts)
{
    return runFft2dSized(cfg, opts, 64);  // the paper's 64x64 array
}

WorkloadResult
runFft2dSized(const MachineConfig &machineCfg, const WorkloadOptions &opts,
              uint32_t n)
{
    MachineConfig cfg = machineCfg;
    if (opts.separationOverride)
        cfg.inLaneSeparation = opts.separationOverride;
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = "FFT 2D";

    uint32_t bits = 0;
    while ((1u << bits) < n)
        bits++;
    if ((1u << bits) != n)
        fatal("runFft2d: n=%u is not a power of two", n);
    if ((2 * n) % (cfg.srf.lanes * cfg.srf.seqWidth) != 0)
        fatal("runFft2d: rows of %u complex values do not tile the "
              "lane stripe", n);
    if (static_cast<uint64_t>(n) * n * 4 + 2048 > cfg.srf.totalWords())
        fatal("runFft2d: a %ux%u array needs two full SRF buffers; the "
              "benchmark (like the paper's) is not strip-mined", n, n);
    const uint32_t words = n * n * 2;
    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const bool cached = cfg.mem.cacheEnabled;

    // --- input + functional stage-by-stage evaluation ---
    Rng rng(opts.seed);
    std::vector<Cplx> input(n * n);
    for (auto &c : input)
        c = Cplx(rng.uniformf(-1, 1), rng.uniformf(-1, 1));

    std::vector<std::vector<Word>> rowStageOut;  // striped full arrays
    std::vector<Cplx> s = input;
    for (uint32_t st = 0; st < bits; st++) {
        s = fftDifStageRows(s, n, st);
        rowStageOut.push_back(cplxToWords(s));
    }
    // rowFinal[r*n + j] = FFT of row r at frequency bitrev(j).
    const std::vector<Cplx> rowFinal = s;

    const uint64_t inAddr = 0, tmpAddr = words, outAddr = 2 * words;
    m.mem().dram().fill(inAddr, cplxToWords(input));

    KernelGraph seqG = fftStageSeqGraph();
    KernelGraph idxG = fftStageIdxGraph();

    StreamProgram prog(m);
    SlotId A = prog.addStream("arrA", words, StreamLayout::Striped,
                              StreamDir::In, indexed, false, 2);
    SlotId B = prog.addStream("arrB", words, StreamLayout::Striped,
                              StreamDir::In, false, false, 2);
    SlotId C1 = kNoSlot, C2 = kNoSlot;
    if (indexed) {
        C1 = prog.addStream("colA", words / g.lanes,
                            StreamLayout::PerLane, StreamDir::In, false,
                            false, 2);
        C2 = prog.addStream("colB", words / g.lanes,
                            StreamLayout::PerLane, StreamDir::In, false,
                            false, 2);
    }

    // Row-stage invocation builder: in/out striped slots.
    auto rowStage = [&](SlotId in, SlotId out, uint32_t st) {
        auto inv = newInvocation(m, &seqG, {in, out});
        auto laneWords = splitStriped(g, rowStageOut[st]);
        for (uint32_t l = 0; l < g.lanes; l++) {
            inv->laneTraces[l].iterations = laneWords[l].size() / 4;
            inv->laneTraces[l].seqWrites[1] = std::move(laneWords[l]);
        }
        inv->finalize();
        return inv;
    };

    // ---- ISRF column-pass functional data ----
    std::vector<std::vector<std::vector<Cplx>>> laneCols(g.lanes);
    std::vector<std::vector<uint32_t>> laneColIds(g.lanes);
    if (indexed) {
        for (uint32_t l = 0; l < g.lanes; l++) {
            laneColIds[l] = laneColumns(l, n, g);
            for (uint32_t j : laneColIds[l]) {
                std::vector<Cplx> col(n);
                for (uint32_t r = 0; r < n; r++)
                    col[r] = rowFinal[r * n + j];
                laneCols[l].push_back(std::move(col));
            }
        }
    }

    // Record index of element (r, j) within its lane (recordWords=2).
    uint32_t pairsPerBlock = g.seqWidth / 2;
    uint32_t pairsPerLaneRow =
        n / (pairsPerBlock * g.lanes) * pairsPerBlock;
    auto laneRecordOf = [&](uint32_t r, uint32_t j) {
        uint32_t q = (j / pairsPerBlock) / g.lanes;  // lane-local block
        return r * pairsPerLaneRow + q * pairsPerBlock +
            (j % pairsPerBlock);
    };

    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        prog.load(A, inAddr);
        SlotId cur = A, nxt = B;
        for (uint32_t st = 0; st < bits; st++) {
            prog.kernel(rowStage(cur, nxt, st));
            std::swap(cur, nxt);
        }
        // Row-pass result is now in `cur`.

        if (!indexed) {
            // Rotate through memory: store + column-major gather with
            // the bit-reversal folded into the gather indices.
            prog.store(cur, tmpAddr, cached);
            std::vector<uint32_t> gidx(n * n);
            for (uint32_t v = 0; v < n; v++)
                for (uint32_t r = 0; r < n; r++)
                    gidx[v * n + r] = r * n + bitReverse(v, bits);
            prog.gather(nxt, tmpAddr, gidx, 2, cached);

            // Column pass: P's rows (length n) through all stages.
            std::vector<Cplx> p(n * n);
            for (uint32_t v = 0; v < n; v++)
                for (uint32_t r = 0; r < n; r++)
                    p[v * n + r] = rowFinal[r * n + bitReverse(v, bits)];
            SlotId c = nxt, x = cur;
            for (uint32_t st = 0; st < bits; st++) {
                p = fftDifStageRows(p, n, st);
                auto inv = newInvocation(m, &seqG, {c, x});
                auto laneWords = splitStriped(g, cplxToWords(p));
                for (uint32_t l = 0; l < g.lanes; l++) {
                    inv->laneTraces[l].iterations =
                        laneWords[l].size() / 4;
                    inv->laneTraces[l].seqWrites[1] =
                        std::move(laneWords[l]);
                }
                inv->finalize();
                prog.kernel(inv);
                std::swap(c, x);
            }
            // Final data in `c`; scatter to natural (u, v) order.
            std::vector<uint32_t> sidx(n * n);
            for (uint32_t v = 0; v < n; v++)
                for (uint32_t t = 0; t < n; t++)
                    sidx[v * n + t] = bitReverse(t, bits) * n + v;
            prog.scatter(c, outAddr, sidx, 2, false);
        } else {
            // First column stage: in-lane indexed reads of `cur`.
            auto inv1 = newInvocation(m, &idxG, {cur, C1});
            std::vector<std::vector<std::vector<Cplx>>> stageCols =
                laneCols;
            for (uint32_t l = 0; l < g.lanes; l++) {
                auto &t = inv1->laneTraces[l];
                std::vector<Word> outWords;
                for (size_t ci = 0; ci < stageCols[l].size(); ci++) {
                    uint32_t j = laneColIds[l][ci];
                    auto after = difStageVec(stageCols[l][ci], 0);
                    uint32_t half = n / 2;
                    for (uint32_t i = 0; i < half; i++) {
                        t.iterations++;
                        t.idxReads[0].push_back(laneRecordOf(i, j));
                        t.idxReads[0].push_back(
                            laneRecordOf(i + half, j));
                    }
                    stageCols[l][ci] = after;
                    auto w = cplxToWords(stageCols[l][ci]);
                    outWords.insert(outWords.end(), w.begin(), w.end());
                }
                t.seqWrites[1] = std::move(outWords);
            }
            inv1->finalize();
            prog.kernel(inv1);

            // Remaining stages: per-lane sequential streams C1 <-> C2.
            SlotId c = C1, x = C2;
            for (uint32_t st = 1; st < bits; st++) {
                auto inv = newInvocation(m, &seqG, {c, x});
                for (uint32_t l = 0; l < g.lanes; l++) {
                    auto &t = inv->laneTraces[l];
                    std::vector<Word> outWords;
                    for (auto &col : stageCols[l]) {
                        col = difStageVec(col, st);
                        auto w = cplxToWords(col);
                        outWords.insert(outWords.end(), w.begin(),
                                        w.end());
                    }
                    t.iterations = outWords.size() / 4;
                    t.seqWrites[1] = std::move(outWords);
                }
                inv->finalize();
                prog.kernel(inv);
                std::swap(c, x);
            }
            // Final data in `c` (PerLane); scatter to natural order.
            std::vector<uint32_t> sidx(n * n);
            uint32_t rec = 0;
            for (uint32_t l = 0; l < g.lanes; l++) {
                for (size_t ci = 0; ci < laneColIds[l].size(); ci++) {
                    uint32_t v = bitReverse(laneColIds[l][ci], bits);
                    for (uint32_t t2 = 0; t2 < n; t2++)
                        sidx[rec++] = bitReverse(t2, bits) * n + v;
                }
            }
            prog.scatter(c, outAddr, sidx, 2, false);
        }
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    // --- validation against the independent reference ---
    std::vector<Cplx> got =
        wordsToCplx(m.mem().dram().dump(outAddr, words));
    std::vector<Cplx> ref = fft2dReference(input, n);
    bool ok = true;
    for (size_t i = 0; i < ref.size() && ok; i++) {
        float err = std::abs(got[i] - ref[i]);
        float mag = std::abs(ref[i]) + 1.0f;
        if (err > 2e-3f * mag)
            ok = false;
    }
    res.correct = ok;
    res.extra["stage_ii_seq"] = m.scheduleKernel(seqG).ii;
    if (indexed)
        res.extra["stage_ii_idx"] = m.scheduleKernel(idxG).ii;
    return res;
}

} // namespace isrf
