/**
 * @file
 * Rijndael (AES-128) benchmark (§5.2): the optimized T-table
 * implementation [25] running in CBC mode, with each cluster
 * encrypting an independent data stream.
 *
 * ISRF configurations hold the four 1 KB T-tables replicated in every
 * lane and perform the 16 table lookups of each round as in-lane
 * indexed SRF accesses. The Base configuration must instead round-trip
 * through memory each round: a kernel emits the lookup indices, an
 * indexed gather fetches the table entries, and the next kernel
 * consumes them. The Cache configuration routes those gathers through
 * the vector cache, which captures the tables but is bandwidth-bound.
 *
 * The AES implementation is real: the S-box is derived from GF(2^8)
 * inversion + the affine transform, T-tables from the S-box, and the
 * pipeline is validated against FIPS-197 test vectors.
 */
#ifndef ISRF_WORKLOADS_RIJNDAEL_H
#define ISRF_WORKLOADS_RIJNDAEL_H

#include <array>
#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace isrf {

/** GF(2^8) multiply modulo x^8+x^4+x^3+x+1. */
uint8_t aesGfMul(uint8_t a, uint8_t b);

/** The AES S-box (computed, not transcribed). */
const std::array<uint8_t, 256> &aesSbox();

/** T-table i (0..3), 256 entries. */
const std::array<uint32_t, 256> &aesTe(int i);

/** AES-128 expanded key: 44 round-key words. */
std::array<uint32_t, 44> aesExpandKey128(const std::array<uint8_t, 16> &key);

/**
 * Encrypt one 16-byte block with the T-table implementation.
 *
 * @param idxTrace If non-null, appends per round (1..10) the 16 lookup
 *        byte-indices in issue order (4 per table, grouped by table).
 * @param stateTrace If non-null, appends the state after each round.
 */
std::array<uint8_t, 16>
aesEncryptBlock128(const std::array<uint32_t, 44> &rk,
                   const std::array<uint8_t, 16> &plain,
                   std::vector<std::array<uint8_t, 16>> *idxTrace = nullptr,
                   std::vector<std::array<uint32_t, 4>> *stateTrace =
                       nullptr);

/** CBC-mode encryption of a sequence of blocks. */
std::vector<std::array<uint8_t, 16>>
aesCbcEncrypt128(const std::array<uint8_t, 16> &key,
                 const std::array<uint8_t, 16> &iv,
                 const std::vector<std::array<uint8_t, 16>> &blocks);

/** Kernel graph of the ISRF per-round kernel (4 idxl table streams). */
KernelGraph rijndaelRoundIdxGraph();

/** Kernel graph of the Base/Cache per-round kernel (gathered values). */
KernelGraph rijndaelRoundBaseGraph(bool firstRound, bool lastRound);

/** Rijndael benchmark parameters. */
struct RijndaelParams
{
    uint32_t blocksPerLane = 24;
};

WorkloadResult runRijndael(const MachineConfig &cfg,
                           const WorkloadOptions &opts);

} // namespace isrf

#endif // ISRF_WORKLOADS_RIJNDAEL_H
