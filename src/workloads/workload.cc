#include "workloads/workload.h"

#include "util/log.h"
#include "workloads/fft.h"
#include "workloads/filter.h"
#include "workloads/igraph.h"
#include "workloads/rijndael.h"
#include "workloads/sort.h"

namespace isrf {

const std::map<std::string, WorkloadRunner> &
workloadRegistry()
{
    static const std::map<std::string, WorkloadRunner> reg = [] {
        std::map<std::string, WorkloadRunner> r;
        r["FFT 2D"] = runFft2d;
        r["Rijndael"] = runRijndael;
        r["Sort"] = runSort;
        r["Filter"] = runFilter;
        for (const auto &ds : igDatasets()) {
            std::string name = ds.name;
            r[name] = [name](const MachineConfig &cfg,
                             const WorkloadOptions &opts) {
                return runIgraph(name, cfg, opts);
            };
        }
        return r;
    }();
    return reg;
}

WorkloadResult
runWorkload(const std::string &name, MachineKind kind,
            const WorkloadOptions &opts)
{
    const auto &reg = workloadRegistry();
    auto it = reg.find(name);
    if (it == reg.end())
        fatal("runWorkload: unknown workload '%s'", name.c_str());
    return it->second(MachineConfig::make(kind), opts);
}

void
harvestResult(WorkloadResult &res, Machine &m, uint64_t cycles)
{
    res.kind = m.config().kind;
    res.cycles = cycles;
    res.breakdown = m.breakdown();
    res.dramWords = m.mem().dram().wordsTransferred();
    res.srfSeqWords = m.srf().seqWordsAccessed();
    res.srfIdxWords = m.srf().idxInLaneWords() + m.srf().idxCrossWords();
    res.cacheWords = m.mem().cache().hits();
    res.kernelBw = m.kernelBw();
}

} // namespace isrf
