#include "workloads/workload.h"

#include "sim/profiler.h"
#include "util/json.h"
#include "util/log.h"
#include "workloads/fft.h"
#include "workloads/filter.h"
#include "workloads/histogram.h"
#include "workloads/igraph.h"
#include "workloads/rijndael.h"
#include "workloads/sort.h"
#include "workloads/sparse.h"
#include "workloads/stencil.h"

namespace isrf {

namespace {

std::map<std::string, WorkloadRunner> &
mutableRegistry()
{
    static std::map<std::string, WorkloadRunner> reg = [] {
        std::map<std::string, WorkloadRunner> r;
        r["FFT 2D"] = runFft2d;
        r["Rijndael"] = runRijndael;
        r["Sort"] = runSort;
        r["Filter"] = runFilter;
        for (const auto &ds : igDatasets()) {
            std::string name = ds.name;
            r[name] = [name](const MachineConfig &cfg,
                             const WorkloadOptions &opts) {
                return runIgraph(name, cfg, opts);
            };
        }
        for (const auto &name : spmvDatasetNames()) {
            r[name] = [name](const MachineConfig &cfg,
                             const WorkloadOptions &opts) {
                return runSpmv(name, cfg, opts);
            };
        }
        for (const auto &name : stencilShapeNames()) {
            r[name] = [name](const MachineConfig &cfg,
                             const WorkloadOptions &opts) {
                return runStencil(name, cfg, opts);
            };
        }
        r["Histogram"] = runHistogram;
        return r;
    }();
    return reg;
}

} // namespace

const std::map<std::string, WorkloadRunner> &
workloadRegistry()
{
    return mutableRegistry();
}

void
registerWorkload(const std::string &name, WorkloadRunner runner)
{
    mutableRegistry()[name] = std::move(runner);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &kv : workloadRegistry())
        names.push_back(kv.first);  // std::map iterates sorted
    return names;
}

std::string
workloadNamesJoined()
{
    std::string joined;
    for (const auto &n : workloadNames()) {
        if (!joined.empty())
            joined += ", ";
        joined += n;
    }
    return joined;
}

WorkloadResult
runWorkload(const std::string &name, MachineKind kind,
            const WorkloadOptions &opts)
{
    return runWorkload(name, MachineConfig::make(kind).fromEnv(), opts);
}

WorkloadResult
runWorkload(const std::string &name, const MachineConfig &cfg,
            const WorkloadOptions &opts)
{
    const auto &reg = workloadRegistry();
    auto it = reg.find(name);
    if (it == reg.end())
        fatal("runWorkload: unknown workload '%s'; registered: %s",
              name.c_str(), workloadNamesJoined().c_str());
    return it->second(cfg, opts);
}

void
harvestResult(WorkloadResult &res, Machine &m, uint64_t cycles)
{
    // The machine's private trace dies with it; fold it into the CLI
    // shim tracer (what --trace exports) while the machine is alive.
    // mergeFrom serializes concurrent harvests from sweep workers.
    if (Tracer::instance().on() && m.tracer().size() > 0)
        Tracer::instance().mergeFrom(m.tracer());
    // Same for the machine's host-time profile (--profile exports the
    // shim's aggregate). Lock-free: mergeFrom is relaxed-atomic.
    if (m.profiler().enabled())
        Profiler::instance().mergeFrom(m.profiler());
    res.kind = m.config().kind;
    res.cycles = cycles;
    res.breakdown = m.breakdown();
    res.dramWords = m.mem().dram().wordsTransferred();
    res.srfSeqWords = m.srf().seqWordsAccessed();
    res.srfIdxWords = m.srf().idxInLaneWords() + m.srf().idxCrossWords();
    res.cacheWords = m.mem().cache().hits();
    res.kernelBw = m.kernelBw();
    if (m.faultsEnabled()) {
        // Background-scrub before harvesting so lingering correctable
        // faults are repaired (and counted) ahead of validation dumps.
        m.scrubFaults();
        m.syncFaultStats();
        uint64_t injected = m.srf().faultsInjected() +
            m.mem().dram().ecc().faultsInjected();
        uint64_t corrected = m.srf().eccCorrected() +
            m.mem().dram().ecc().corrected();
        uint64_t uncorrectable = m.srf().eccUncorrectable() +
            m.mem().dram().ecc().uncorrectable();
        res.extra["faults_injected"] = static_cast<double>(injected);
        res.extra["ecc_corrected"] = static_cast<double>(corrected);
        res.extra["ecc_uncorrectable"] = static_cast<double>(uncorrectable);
        res.extra["retries"] = static_cast<double>(m.mem().retries());
        res.extra["poisoned_words"] =
            static_cast<double>(m.mem().poisonedWords());
        res.extra["degraded_subarrays"] =
            static_cast<double>(m.srf().offlineSubArrays());
    }
}

void
resultJson(JsonWriter &w, const WorkloadResult &res)
{
    w.beginObject();
    w.field("workload", res.workload);
    w.field("machine", std::string(machineKindName(res.kind)));
    w.field("cycles", res.cycles);
    w.field("correct", res.correct);
    w.field("status", std::string(runStatusName(res.status)));
    w.field("error", res.error);
    w.key("breakdown").beginObject();
    w.field("loop_body", res.breakdown.loopBody);
    w.field("mem_stall", res.breakdown.memStall);
    w.field("srf_stall", res.breakdown.srfStall);
    w.field("overhead", res.breakdown.overhead);
    w.endObject();
    w.field("dram_words", res.dramWords);
    w.field("srf_seq_words", res.srfSeqWords);
    w.field("srf_idx_words", res.srfIdxWords);
    w.field("cache_words", res.cacheWords);
    w.key("kernels").beginArray();
    for (const auto &kv : res.kernelBw) {
        const KernelBwRecord &r = kv.second;
        w.beginObject();
        w.field("name", kv.first);
        w.field("invocations", r.invocations);
        w.field("lane_cycles", r.laneCycles);
        w.field("seq_words_per_lane_cycle", r.seqPerLaneCycle());
        w.field("in_lane_words_per_lane_cycle", r.inLanePerLaneCycle());
        w.field("cross_words_per_lane_cycle", r.crossPerLaneCycle());
        w.endObject();
    }
    w.endArray();
    w.key("extra").beginObject();
    for (const auto &kv : res.extra)
        w.field(kv.first, kv.second);
    w.endObject();
    w.endObject();
}

std::string
resultJson(const WorkloadResult &res)
{
    JsonWriter w;
    resultJson(w, res);
    return w.str();
}

} // namespace isrf
