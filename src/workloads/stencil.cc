#include "workloads/stencil.h"

#include <algorithm>
#include <cmath>

#include "kernel/builder.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/trace_util.h"

namespace isrf {

namespace {

struct StencilShape
{
    const char *name;
    bool is3d;
    uint32_t n;         ///< edge length (n x n or n x n x n)
    uint32_t stripSize; ///< rows (2D) / planes (3D) updated per strip
    uint32_t points;    ///< 5, 9 or 27
};

const std::vector<StencilShape> &
shapes()
{
    static const std::vector<StencilShape> s = {
        {"Stencil 2D5", false, 128, 16, 5},
        {"Stencil 2D9", false, 128, 16, 9},
        {"Stencil 3D27", true, 32, 4, 27},
    };
    return s;
}

/** Tap weight: 0.5 at the center, the rest shared evenly. */
float
tap(const StencilShape &sh, int dp, int dr, int dc)
{
    if (dp == 0 && dr == 0 && dc == 0)
        return 0.5f;
    if (sh.points == 5 && std::abs(dr) + std::abs(dc) != 1)
        return 0.0f;
    return 0.5f / static_cast<float>(sh.points - 1);
}

/** Reference convolution with clamped boundaries. */
std::vector<float>
stencilReference(const StencilShape &sh, const std::vector<float> &img)
{
    const int n = static_cast<int>(sh.n);
    const int planes = sh.is3d ? n : 1;
    std::vector<float> out(img.size());
    for (int p = 0; p < planes; p++) {
        for (int r = 0; r < n; r++) {
            for (int c = 0; c < n; c++) {
                float acc = 0;
                for (int dp = sh.is3d ? -1 : 0; dp <= (sh.is3d ? 1 : 0);
                        dp++) {
                    for (int dr = -1; dr <= 1; dr++) {
                        for (int dc = -1; dc <= 1; dc++) {
                            int pp = std::clamp(p + dp, 0, planes - 1);
                            int rr = std::clamp(r + dr, 0, n - 1);
                            int cc = std::clamp(c + dc, 0, n - 1);
                            acc += tap(sh, dp, dr, dc) *
                                img[(static_cast<size_t>(pp) * n + rr) *
                                        n + cc];
                        }
                    }
                }
                out[(static_cast<size_t>(p) * n + r) * n + c] = acc;
            }
        }
    }
    return out;
}

/**
 * Indexed kernel: R in-lane indexed reads of the incoming column (one
 * per window-row view) combined with two carried column partial sums.
 * The arithmetic is timing-decorative — functional results travel in
 * the traces — but mirrors the real dataflow: R reads, R multiplies,
 * a reduction tree, one output.
 */
KernelGraph
stencilIdxGraph(const StencilShape &sh, uint32_t views,
                uint32_t rowStride)
{
    KernelBuilder b(sh.name);
    std::vector<StreamRef> rows(views);
    for (uint32_t i = 0; i < views; i++)
        rows[i] = b.idxlIn("row" + std::to_string(i));
    auto out = b.seqOut("updated");

    auto it = b.iterIdx();
    auto rowBase = b.imul(it, b.constInt(static_cast<int32_t>(
        rowStride)));
    Value p;
    for (uint32_t i = 0; i < views; i++) {
        auto px = b.readIdx(rows[i], b.iadd(rowBase,
            b.constInt(static_cast<int32_t>(i * rowStride))));
        auto term = b.fmul(px, b.constFloat(
            0.5f / static_cast<float>(sh.points)));
        p = i == 0 ? term : b.fadd(p, term);
    }
    Value c1 = b.carryIn();
    Value c2 = b.carryIn();
    b.write(out, b.fadd(b.fadd(p, c1), c2));
    b.carryOut(c1, p, 1);
    b.carryOut(c2, c1, 1);
    return b.build();
}

/** Base/Cache kernel: scratchpad row-buffer ring, R reads per pixel. */
KernelGraph
stencilSpGraph(const StencilShape &sh, uint32_t views)
{
    KernelBuilder b(sh.name);
    auto in = b.seqIn("strip");
    auto out = b.seqOut("updated");

    auto x = b.read(in);
    auto it = b.iterIdx();
    auto wa = b.iand(it, b.constInt(0xff));
    b.spWrite(wa, x);
    b.spWrite(b.iadd(wa, b.constInt(256)), x);
    Value p;
    for (uint32_t i = 0; i < views; i++) {
        auto px = b.spRead(b.iadd(wa,
            b.constInt(static_cast<int32_t>(i * 256))));
        auto term = b.fmul(px, b.constFloat(
            0.5f / static_cast<float>(sh.points)));
        p = i == 0 ? term : b.fadd(p, term);
    }
    Value c1 = b.carryIn();
    Value c2 = b.carryIn();
    b.write(out, b.fadd(b.fadd(p, c1), c2));
    b.carryOut(c1, p, 1);
    b.carryOut(c2, c1, 1);
    return b.build();
}

} // namespace

const std::vector<std::string> &
stencilShapeNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const auto &s : shapes())
            n.push_back(s.name);
        return n;
    }();
    return names;
}

WorkloadResult
runStencil(const std::string &name, const MachineConfig &machineCfg,
           const WorkloadOptions &opts)
{
    const StencilShape *shape = nullptr;
    for (const auto &s : shapes())
        if (name == s.name)
            shape = &s;
    if (!shape)
        fatal("runStencil: unknown shape '%s'", name.c_str());
    const StencilShape &sh = *shape;

    MachineConfig cfg = machineCfg;
    if (opts.separationOverride)
        cfg.inLaneSeparation = opts.separationOverride;
    Machine m;
    m.init(cfg);
    m.engine().setCancel(opts.cancel);
    m.setCheckpoint(opts.checkpoint);

    WorkloadResult res;
    res.workload = sh.name;

    const SrfGeometry &g = cfg.srf;
    const bool indexed = cfg.srfMode != SrfMode::SequentialOnly;
    const bool cached = cfg.mem.cacheEnabled;
    const uint32_t n = sh.n;
    const uint32_t planes = sh.is3d ? n : 1;
    // "Units" are rows (2D) or planes (3D); a strip updates stripSize
    // units and loads them plus a one-deep halo on each side.
    const uint32_t loadUnits = sh.stripSize + 2;
    const uint32_t strips = n / sh.stripSize;
    const uint32_t unitWords = sh.is3d ? n * n : n;
    // Window-row views: 3 for 2D, 3 planes x 3 rows for 3D.
    const uint32_t views = sh.is3d ? 9 : 3;

    Rng rng(opts.seed);
    std::vector<float> img(static_cast<size_t>(planes) * n * n);
    for (auto &p : img)
        p = rng.uniformf(0, 1);
    std::vector<float> ref = stencilReference(sh, img);

    const uint64_t inAddr = 0;
    const uint64_t outAddr = img.size();
    m.mem().dram().fill(inAddr, floatsToWords(img));

    std::vector<std::unique_ptr<KernelGraph>> graphs;
    graphs.push_back(std::make_unique<KernelGraph>(
        indexed ? stencilIdxGraph(sh, views, n / g.lanes)
                : stencilSpGraph(sh, views)));
    const KernelGraph *kg = graphs[0].get();

    StreamProgram prog(m);
    SlotId inA = prog.addStream("stripInA",
        static_cast<uint64_t>(loadUnits) * unitWords,
        StreamLayout::Striped, StreamDir::In, indexed);
    SlotId inB = prog.addStream("stripInB",
        static_cast<uint64_t>(loadUnits) * unitWords,
        StreamLayout::Striped, StreamDir::In, indexed);
    SlotId outA = prog.addStream("stripOutA",
        static_cast<uint64_t>(sh.stripSize) * unitWords);
    SlotId outB = prog.addStream("stripOutB",
        static_cast<uint64_t>(sh.stripSize) * unitWords);
    std::vector<SlotId> viewsA, viewsB;
    if (indexed) {
        for (uint32_t i = 0; i < views; i++) {
            viewsA.push_back(prog.addStreamAlias("viewA", inA));
            viewsB.push_back(prog.addStreamAlias("viewB", inB));
        }
    }

    // Lane-local index of buffer word (bufRow, cc): every row of the
    // buffer is striped identically (rows are multiples of the
    // seqWidth*lanes stripe), columns outside the lane are clamped to
    // its nearest group (documented approximation, as in Filter).
    auto laneLocalIdx = [&](uint32_t bufRow, uint32_t cc, uint32_t lane) {
        uint32_t grp = cc / g.seqWidth;
        if (grp % g.lanes != lane)
            grp = (cc / (g.seqWidth * g.lanes)) * g.lanes + lane;
        uint32_t laneRow = bufRow * (n / (g.seqWidth * g.lanes)) +
            grp / g.lanes;
        return laneRow * g.seqWidth + cc % g.seqWidth;
    };

    ProgOpId lastKernelOnBuf[2] = {-1, -1};
    for (uint32_t rep = 0; rep < opts.repeats; rep++) {
        SlotId inCur = inA, inNxt = inB;
        SlotId outCur = outA, outNxt = outB;
        std::vector<SlotId> *viewsCur = &viewsA, *viewsNxt = &viewsB;
        int bufIdx = 0;
        for (uint32_t s = 0; s < strips; s++) {
            int firstUnit = std::clamp<int>(
                static_cast<int>(s * sh.stripSize) - 1, 0,
                static_cast<int>(n - loadUnits));
            ProgOpId loadId = prog.load(inCur,
                inAddr + static_cast<uint64_t>(firstUnit) * unitWords,
                cached);
            if (indexed && lastKernelOnBuf[bufIdx] >= 0)
                prog.dependsOn(loadId, lastKernelOnBuf[bufIdx]);

            std::vector<SlotId> binding;
            if (indexed) {
                binding = *viewsCur;
                binding.push_back(outCur);
            } else {
                binding = {inCur, outCur};
            }
            auto inv = newInvocation(m, kg, binding);
            const size_t outSlot = indexed ? views : 1;
            for (uint32_t l = 0; l < g.lanes; l++) {
                auto &tr = inv->laneTraces[l];
                std::vector<Word> outWords;
                const uint32_t pLo = sh.is3d ? s * sh.stripSize : 0;
                const uint32_t pHi = sh.is3d
                    ? pLo + sh.stripSize : 1;
                const uint32_t rLo = sh.is3d ? 0 : s * sh.stripSize;
                const uint32_t rHi = sh.is3d ? n
                    : rLo + sh.stripSize;
                for (uint32_t p = pLo; p < pHi; p++) {
                    for (uint32_t r = rLo; r < rHi; r++) {
                        for (uint32_t c = 0; c < n; c++) {
                            if ((c / g.seqWidth) % g.lanes != l)
                                continue;
                            tr.iterations++;
                            // Functional value via column partial
                            // sums (different summation order than
                            // the reference).
                            float acc = 0;
                            for (int dc = -1; dc <= 1; dc++) {
                                float colSum = 0;
                                for (int dp = sh.is3d ? -1 : 0;
                                        dp <= (sh.is3d ? 1 : 0); dp++) {
                                    for (int dr = -1; dr <= 1; dr++) {
                                        int pp = std::clamp<int>(
                                            static_cast<int>(p) + dp,
                                            0, planes - 1);
                                        int rr = std::clamp<int>(
                                            static_cast<int>(r) + dr,
                                            0, n - 1);
                                        int cc = std::clamp<int>(
                                            static_cast<int>(c) + dc,
                                            0, n - 1);
                                        colSum += tap(sh, dp, dr, dc) *
                                            img[(static_cast<size_t>(
                                                     pp) * n + rr) * n +
                                                cc];
                                    }
                                }
                                acc += colSum;
                            }
                            outWords.push_back(floatToWord(acc));
                            if (!indexed)
                                continue;
                            // One incoming-column read per view.
                            int cNew = std::min<int>(
                                static_cast<int>(c) + 1, n - 1);
                            uint32_t vi = 0;
                            for (int dp = sh.is3d ? -1 : 0;
                                    dp <= (sh.is3d ? 1 : 0); dp++) {
                                for (int dr = -1; dr <= 1; dr++) {
                                    uint32_t bufRow;
                                    if (sh.is3d) {
                                        int pp = std::clamp<int>(
                                            std::clamp<int>(
                                                static_cast<int>(p) +
                                                    dp, 0, planes - 1) -
                                                firstUnit,
                                            0, loadUnits - 1);
                                        int rr = std::clamp<int>(
                                            static_cast<int>(r) + dr,
                                            0, n - 1);
                                        bufRow = static_cast<uint32_t>(
                                            pp) * n + rr;
                                    } else {
                                        int rr = std::clamp<int>(
                                            std::clamp<int>(
                                                static_cast<int>(r) +
                                                    dr, 0, n - 1) -
                                                firstUnit,
                                            0, loadUnits - 1);
                                        bufRow = static_cast<uint32_t>(
                                            rr);
                                    }
                                    tr.idxReads[vi].push_back(
                                        laneLocalIdx(bufRow,
                                            static_cast<uint32_t>(cNew),
                                            l));
                                    vi++;
                                }
                            }
                        }
                    }
                }
                tr.seqWrites[outSlot] = std::move(outWords);
            }
            inv->finalize();
            ProgOpId kid = prog.kernel(inv);
            if (indexed) {
                prog.dependsOn(kid, loadId);
                lastKernelOnBuf[bufIdx] = kid;
            }
            prog.store(outCur, outAddr +
                static_cast<uint64_t>(s) * sh.stripSize * unitWords);
            std::swap(inCur, inNxt);
            std::swap(outCur, outNxt);
            std::swap(viewsCur, viewsNxt);
            bufIdx ^= 1;
        }
    }

    uint64_t cycles = prog.run();
    res.status = prog.lastStatus();
    harvestResult(res, m, cycles);
    if (res.status != RunStatus::Done) {
        // Interrupted run (watchdog/deadline/cancel): the functional
        // output is incomplete, so skip the reference validation.
        return res;
    }

    std::vector<float> got = wordsToFloats(
        m.mem().dram().dump(outAddr, img.size()));
    bool ok = true;
    for (size_t i = 0; i < ref.size() && ok; i++) {
        if (std::abs(got[i] - ref[i]) > 1e-4f)
            ok = false;
    }
    res.correct = ok;
    res.extra["kernel_ii"] = m.scheduleKernel(*kg).ii;
    res.extra["strips"] = strips;
    res.extra["points"] = sh.points;
    return res;
}

} // namespace isrf
