#include "workloads/micro.h"

#include <algorithm>
#include <vector>

#include "net/crossbar.h"
#include "srf/srf.h"
#include "util/random.h"

namespace isrf {

double
inLaneRandomThroughput(const InLaneMicroParams &p)
{
    SrfGeometry geom;
    geom.subArrays = p.subArrays;
    geom.addrFifoSize = p.fifoSize;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);

    // Graceful-degradation study: run with some sub-arrays offline so
    // their indexed traffic remaps onto the survivors.
    uint32_t offline = std::min(p.offlineSubArrays, p.subArrays - 1);
    for (uint32_t l = 0; l < geom.lanes; l++)
        for (uint32_t s = 0; s < offline; s++)
            srf.setSubArrayOffline(l, s, true);

    // One PerLane table region per stream, spread over the bank.
    std::vector<SlotId> slots;
    uint32_t regionWords = geom.laneWords / (p.streams + 1);
    regionWords = regionWords / geom.seqWidth * geom.seqWidth;
    for (uint32_t s = 0; s < p.streams; s++) {
        SlotConfig cfg;
        cfg.dir = StreamDir::In;
        cfg.indexed = true;
        cfg.layout = StreamLayout::PerLane;
        cfg.base = s * regionWords;
        cfg.lengthWords = regionWords;
        slots.push_back(srf.openSlot(cfg));
    }

    Rng rng(p.seed);
    uint64_t startWords = 0;
    Cycle now = 0;
    Word tmp[4];
    for (uint32_t c = 0; c < p.cycles; c++) {
        srf.beginCycle(now);
        for (uint32_t l = 0; l < geom.lanes; l++) {
            // Consume any returned data (the micro-kernel never blocks
            // on values, only on issue capacity).
            for (SlotId id : slots) {
                while (srf.idxDataReady(l, id, now))
                    srf.idxDataPop(l, id, tmp);
            }
            // VLIW bundle: issue all streams' reads or none.
            bool canAll = true;
            for (SlotId id : slots) {
                if (!srf.idxCanIssue(l, id)) {
                    canAll = false;
                    break;
                }
            }
            if (canAll) {
                for (SlotId id : slots) {
                    srf.idxIssueRead(l, id, static_cast<uint32_t>(
                        rng.below(regionWords)));
                }
            }
        }
        srf.endCycle(now);
        now++;
        if (c == p.cycles / 4)  // skip warm-up
            startWords = srf.idxInLaneWords();
    }
    uint64_t measured = srf.idxInLaneWords() - startWords;
    double measCycles = static_cast<double>(p.cycles) * 3.0 / 4.0;
    return static_cast<double>(measured) / measCycles / geom.lanes;
}

double
crossLaneRandomThroughput(const CrossLaneMicroParams &p)
{
    SrfGeometry geom;
    geom.netPortsPerBank = p.netPortsPerBank;
    geom.netTopology = p.topology;
    Crossbar net;
    net.init(geom.lanes, 1, 1, p.topology);
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, &net);

    // The cross-lane random-read target: a large striped region.
    SlotConfig xcfg;
    xcfg.dir = StreamDir::In;
    xcfg.indexed = true;
    xcfg.crossLane = true;
    xcfg.layout = StreamLayout::Striped;
    xcfg.base = 0;
    uint32_t crossWords = geom.laneWords / 2 * geom.lanes;
    xcfg.lengthWords = crossWords;
    SlotId xslot = srf.openSlot(xcfg);

    // Sequential streams resident in the other half of the SRF.
    std::vector<SlotId> seqSlots;
    uint32_t seqRegion = geom.laneWords / 2 / (p.seqStreams + 1);
    seqRegion = seqRegion / geom.seqWidth * geom.seqWidth;
    for (uint32_t s = 0; s < p.seqStreams; s++) {
        SlotConfig cfg;
        cfg.dir = StreamDir::In;
        cfg.layout = StreamLayout::Striped;
        cfg.base = geom.laneWords / 2 + s * seqRegion;
        cfg.lengthWords = seqRegion * geom.lanes;
        seqSlots.push_back(srf.openSlot(cfg));
    }

    Rng rng(p.seed);
    uint64_t startWords = 0;
    Cycle now = 0;
    Word tmp[4];
    for (uint32_t c = 0; c < p.cycles; c++) {
        net.newCycle();
        srf.beginCycle(now);
        // Unrelated statically scheduled inter-cluster traffic.
        for (uint32_t l = 0; l < geom.lanes; l++) {
            if (rng.chance(p.commOccupancy))
                net.claimSource(l);
        }
        for (uint32_t l = 0; l < geom.lanes; l++) {
            while (srf.idxDataReady(l, xslot, now))
                srf.idxDataPop(l, xslot, tmp);
            if (srf.idxCanIssue(l, xslot)) {
                srf.idxIssueRead(l, xslot, static_cast<uint32_t>(
                    rng.below(crossWords)));
            }
            // 3 sequential stream accesses per cycle: keep the
            // sequential side demanding the SRF port.
            for (SlotId id : seqSlots) {
                if (srf.seqCanRead(l, id))
                    srf.seqRead(l, id);
            }
        }
        // Restart exhausted sequential streams (slot-wide; lanes run
        // nearly in lockstep).
        for (SlotId id : seqSlots) {
            if (srf.seqWordsRemaining(0, id) == 0)
                srf.rewindSlot(id);
        }
        srf.endCycle(now);
        now++;
        if (c == p.cycles / 4)
            startWords = srf.idxCrossWords();
    }
    uint64_t measured = srf.idxCrossWords() - startWords;
    double measCycles = static_cast<double>(p.cycles) * 3.0 / 4.0;
    return static_cast<double>(measured) / measCycles / geom.lanes;
}

} // namespace isrf
