/**
 * @file
 * FNV-1a hashing shared by the sweep fingerprints (driver/) and the
 * content-addressed result store (service/). One definition so the two
 * layers can never drift: a store keyed by SweepRunner::fingerprint()
 * values must hash exactly like the journal that seeded it.
 */
#ifndef ISRF_UTIL_HASH_H
#define ISRF_UTIL_HASH_H

#include <cstdint>
#include <string>

namespace isrf {

constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** 64-bit FNV-1a over `s`, chainable via the `h` seed. */
inline uint64_t
fnv1a(const std::string &s, uint64_t h = kFnvBasis)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace isrf

#endif // ISRF_UTIL_HASH_H
