/**
 * @file
 * FNV-1a hashing shared by the sweep fingerprints (driver/) and the
 * content-addressed result store (service/). One definition so the two
 * layers can never drift: a store keyed by SweepRunner::fingerprint()
 * values must hash exactly like the journal that seeded it.
 */
#ifndef ISRF_UTIL_HASH_H
#define ISRF_UTIL_HASH_H

#include <cstdint>
#include <string>

namespace isrf {

constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** 64-bit FNV-1a over `s`, chainable via the `h` seed. */
inline uint64_t
fnv1a(const std::string &s, uint64_t h = kFnvBasis)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

/**
 * Hash a file's bytes: size + FNV-1a content hash. Used to fold
 * external dataset files into sweep fingerprints so a resumed journal
 * cannot splice results computed from a since-modified input. Returns
 * false (outputs untouched) if the file cannot be read.
 */
bool fnv1aFile(const std::string &path, uint64_t &bytes, uint64_t &hash);

} // namespace isrf

#endif // ISRF_UTIL_HASH_H
