#include "util/snapshot.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/hash.h"
#include "util/log.h"

namespace isrf {

namespace {

constexpr char kMagic[8] = {'I', 'S', 'R', 'F', 'S', 'N', 'A', 'P'};

uint64_t
fnvBytes(const char *p, size_t n, uint64_t h = kFnvBasis)
{
    for (size_t i = 0; i < n; i++) {
        h ^= static_cast<uint8_t>(p[i]);
        h *= kFnvPrime;
    }
    return h;
}

void
putU32(std::string &out, uint32_t v)
{
    char tmp[4];
    std::memcpy(tmp, &v, 4);
    out.append(tmp, 4);
}

void
putU64(std::string &out, uint64_t v)
{
    char tmp[8];
    std::memcpy(tmp, &v, 8);
    out.append(tmp, 8);
}

bool
getU32(const std::string &in, size_t &pos, uint32_t &v)
{
    if (in.size() - pos < 4)
        return false;
    std::memcpy(&v, in.data() + pos, 4);
    pos += 4;
    return true;
}

bool
getU64(const std::string &in, size_t &pos, uint64_t &v)
{
    if (in.size() - pos < 8)
        return false;
    std::memcpy(&v, in.data() + pos, 8);
    pos += 8;
    return true;
}

/** Sanity cap: the registry has ~9 sections; 64 leaves headroom. */
constexpr uint32_t kMaxSections = 64;

} // namespace

void
Snapshot::addSection(uint32_t tag, const SnapshotWriter &w)
{
    sections.push_back(Section{tag, w.data()});
}

const std::string *
Snapshot::findSection(uint32_t tag) const
{
    for (const Section &s : sections)
        if (s.tag == tag)
            return &s.payload;
    return nullptr;
}

std::string
Snapshot::serialize() const
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putU32(out, version);
    putU64(out, fingerprint);
    putU64(out, cycle);
    putU64(out, geometry);
    putU32(out, static_cast<uint32_t>(sections.size()));
    putU64(out, fnvBytes(out.data(), out.size()));
    for (const Section &s : sections) {
        const size_t start = out.size();
        putU32(out, s.tag);
        putU64(out, s.payload.size());
        out.append(s.payload);
        putU64(out,
               fnvBytes(out.data() + start, out.size() - start));
    }
    return out;
}

bool
Snapshot::parse(const std::string &bytes, std::string &err)
{
    sections.clear();
    size_t pos = 0;
    if (bytes.size() < sizeof(kMagic) ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        err = "bad magic (not a snapshot file)";
        return false;
    }
    pos = sizeof(kMagic);
    uint32_t nsections = 0;
    uint64_t headerHash = 0;
    if (!getU32(bytes, pos, version) ||
        !getU64(bytes, pos, fingerprint) ||
        !getU64(bytes, pos, cycle) ||
        !getU64(bytes, pos, geometry) ||
        !getU32(bytes, pos, nsections)) {
        err = "truncated header";
        return false;
    }
    const uint64_t wantHeader = fnvBytes(bytes.data(), pos);
    if (!getU64(bytes, pos, headerHash)) {
        err = "truncated header";
        return false;
    }
    if (headerHash != wantHeader) {
        err = "header checksum mismatch";
        return false;
    }
    if (version != kSnapshotFormatVersion) {
        err = strprintf("unsupported snapshot format version %u "
                        "(this build reads version %u)",
                        version, kSnapshotFormatVersion);
        return false;
    }
    if (nsections > kMaxSections) {
        err = strprintf("implausible section count %u", nsections);
        return false;
    }
    sections.reserve(nsections);
    for (uint32_t i = 0; i < nsections; i++) {
        const size_t start = pos;
        Section s;
        uint64_t len = 0;
        if (!getU32(bytes, pos, s.tag) || !getU64(bytes, pos, len)) {
            err = strprintf("truncated section header (section %u)",
                            i);
            return false;
        }
        if (len > bytes.size() - pos) {
            err = strprintf("section %u length %llu exceeds file",
                            i, static_cast<unsigned long long>(len));
            return false;
        }
        s.payload.assign(bytes, pos, static_cast<size_t>(len));
        pos += static_cast<size_t>(len);
        const uint64_t want =
            fnvBytes(bytes.data() + start, pos - start);
        uint64_t got = 0;
        if (!getU64(bytes, pos, got)) {
            err = strprintf("truncated section checksum (section %u)",
                            i);
            return false;
        }
        if (got != want) {
            err = strprintf("section %u ('%c%c%c%c') checksum "
                            "mismatch", i,
                            static_cast<char>(s.tag & 0xff),
                            static_cast<char>(s.tag >> 8 & 0xff),
                            static_cast<char>(s.tag >> 16 & 0xff),
                            static_cast<char>(s.tag >> 24 & 0xff));
            return false;
        }
        sections.push_back(std::move(s));
    }
    if (pos != bytes.size()) {
        err = strprintf("%zu trailing byte(s) after last section",
                        bytes.size() - pos);
        return false;
    }
    return true;
}

bool
Snapshot::writeAtomic(const std::string &path, std::string &err) const
{
    const std::string bytes = serialize();
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        err = strprintf("cannot open %s: %s", tmp.c_str(),
                        std::strerror(errno));
        return false;
    }
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) ==
            bytes.size() &&
        std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    std::fclose(f);
    // rename() is atomic on POSIX: a crash leaves either the previous
    // checkpoint or this one, never a half-written file under `path`.
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        err = strprintf("cannot write %s: %s", path.c_str(),
                        std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

SnapshotLoad
loadSnapshotFile(const std::string &path, uint64_t expectFingerprint,
                 Snapshot &out, std::string &err)
{
    err.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return SnapshotLoad::Missing;
    std::string bytes;
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.append(chunk, n);
    const bool readOk = !std::ferror(f);
    std::fclose(f);
    if (!readOk) {
        err = strprintf("read error on %s", path.c_str());
        return SnapshotLoad::Corrupt;
    }
    if (!out.parse(bytes, err))
        return SnapshotLoad::Corrupt;
    if (out.fingerprint != expectFingerprint) {
        err = strprintf("checkpoint fingerprint %016llx does not "
                        "match job %016llx",
                        static_cast<unsigned long long>(
                            out.fingerprint),
                        static_cast<unsigned long long>(
                            expectFingerprint));
        return SnapshotLoad::Stale;
    }
    return SnapshotLoad::Ok;
}

void
CheckpointContext::removeFile()
{
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
}

std::string
checkpointFilePath(const std::string &dir, uint64_t jobFingerprint)
{
    return strprintf("%s/job-%016llx.ckpt", dir.c_str(),
                     static_cast<unsigned long long>(jobFingerprint));
}

bool
ensureCheckpointDir(const std::string &dir, std::string &err)
{
    std::string partial;
    for (size_t i = 0; i <= dir.size(); i++) {
        if (i < dir.size() && dir[i] != '/') {
            partial += dir[i];
            continue;
        }
        if (i < dir.size())
            partial += '/';
        if (partial.empty() || partial == "/")
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
            err = strprintf("cannot create checkpoint directory %s: %s",
                            partial.c_str(), std::strerror(errno));
            return false;
        }
    }
    return true;
}

void
quarantineSnapshotFile(const std::string &path, const std::string &why)
{
    const std::string bad = path + ".bad";
    std::remove(bad.c_str());
    if (std::rename(path.c_str(), bad.c_str()) == 0)
        ISRF_WARN("checkpoint %s quarantined to %s (%s); restarting "
                  "from zero", path.c_str(), bad.c_str(),
                  why.c_str());
    else
        ISRF_WARN("checkpoint %s unusable (%s) and could not be "
                  "quarantined; restarting from zero", path.c_str(),
                  why.c_str());
}

} // namespace isrf
