#include "util/jsonl.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include "util/json.h"
#include "util/log.h"

namespace isrf {

// ----------------------------------------------------------------------
// JsonlWriter
// ----------------------------------------------------------------------

bool
JsonlWriter::open(const std::string &path, bool append)
{
    close();
    f_ = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (!f_) {
        ISRF_WARN("JsonlWriter: cannot open '%s': %s", path.c_str(),
                  std::strerror(errno));
        return false;
    }
    path_ = path;
    return true;
}

bool
JsonlWriter::append(const std::string &json)
{
    if (!f_)
        return false;
    if (json.find('\n') != std::string::npos || !jsonValid(json)) {
        // Refusing is better than poisoning: one bad line would make
        // every later reader treat the journal as corrupt.
        ISRF_WARN("JsonlWriter: refusing invalid record for '%s'",
                  path_.c_str());
        return false;
    }
    std::string line = json;
    line += '\n';
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size())
        return false;
    if (std::fflush(f_) != 0)
        return false;
    // fsync per record is the durability contract: a record the caller
    // saw append() succeed for survives a SIGKILL of this process.
    // (It does not survive power loss of the whole host without a
    // journaling filesystem, which is out of scope.)
    return fsync(fileno(f_)) == 0;
}

void
JsonlWriter::close()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    path_.clear();
}

// ----------------------------------------------------------------------
// Tolerant reader
// ----------------------------------------------------------------------

JsonlReadResult
readJsonl(const std::string &path)
{
    JsonlReadResult res;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        res.error = strprintf("cannot open '%s': %s", path.c_str(),
                              std::strerror(errno));
        return res;
    }
    std::string content;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    bool readErr = std::ferror(f) != 0;
    std::fclose(f);
    if (readErr) {
        res.error = strprintf("I/O error reading '%s'", path.c_str());
        return res;
    }

    size_t pos = 0;
    size_t lineNo = 0;
    while (pos < content.size()) {
        size_t nl = content.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const size_t end = terminated ? nl : content.size();
        std::string line = content.substr(pos, end - pos);
        lineNo++;
        if (line.empty()) {
            if (terminated)
                res.blankLines++;
        } else {
            if (jsonValid(line)) {
                // An unterminated-but-valid final chunk is a complete
                // record whose trailing newline was torn off — keep it.
                res.records.push_back(std::move(line));
            } else if (!terminated) {
                // Torn final line from a killed append: recoverable.
                res.tornFinalLine = true;
                res.tornBytes = line.size();
            } else {
                // An invalid *interior* line cannot come from a torn
                // append — the file is corrupt; refuse to guess.
                res.error = strprintf(
                    "'%s' line %zu is not valid JSON (corrupt journal)",
                    path.c_str(), lineNo);
                res.records.clear();
                return res;
            }
        }
        if (!terminated)
            break;
        pos = nl + 1;
    }
    return res;
}

// ----------------------------------------------------------------------
// JsonLineView
// ----------------------------------------------------------------------

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); i++) {
        char c = s[i];
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (++i >= s.size())
            break;
        switch (s[i]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (i + 4 >= s.size())
                return out;
            unsigned cp = 0;
            for (int k = 1; k <= 4; k++) {
                char h = s[i + k];
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return out;
            }
            i += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are
            // not produced by our writer; a lone surrogate encodes as
            // its raw 3-byte form, which round-trips harmlessly).
            if (cp < 0x80) {
                out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
                out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
                out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                out.push_back(
                    static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default:
            // Unknown escape: keep the character (lenient).
            out.push_back(s[i]);
            break;
        }
    }
    return out;
}

namespace {

/** Skip one JSON value starting at `pos`; return one-past-end. */
size_t
skipValue(const std::string &s, size_t pos)
{
    const size_t n = s.size();
    while (pos < n && std::isspace(static_cast<unsigned char>(s[pos])))
        pos++;
    if (pos >= n)
        return n;
    char c = s[pos];
    if (c == '"') {
        pos++;
        while (pos < n) {
            if (s[pos] == '\\')
                pos++;  // skip the escaped char
            else if (s[pos] == '"')
                return pos + 1;
            pos++;
        }
        return n;
    }
    if (c == '{' || c == '[') {
        int depth = 0;
        bool inStr = false;
        while (pos < n) {
            char d = s[pos];
            if (inStr) {
                if (d == '\\')
                    pos++;
                else if (d == '"')
                    inStr = false;
            } else if (d == '"') {
                inStr = true;
            } else if (d == '{' || d == '[') {
                depth++;
            } else if (d == '}' || d == ']') {
                depth--;
                if (depth == 0)
                    return pos + 1;
            }
            pos++;
        }
        return n;
    }
    // number / literal: runs to the next delimiter
    while (pos < n && s[pos] != ',' && s[pos] != '}' && s[pos] != ']' &&
           !std::isspace(static_cast<unsigned char>(s[pos])))
        pos++;
    return pos;
}

} // namespace

JsonLineView::JsonLineView(std::string line) : line_(std::move(line))
{
    if (!jsonValid(line_))
        return;
    const size_t n = line_.size();
    size_t pos = 0;
    while (pos < n && std::isspace(static_cast<unsigned char>(line_[pos])))
        pos++;
    if (pos >= n || line_[pos] != '{')
        return;
    pos++;
    while (pos < n) {
        while (pos < n &&
               (std::isspace(static_cast<unsigned char>(line_[pos])) ||
                line_[pos] == ','))
            pos++;
        if (pos >= n || line_[pos] == '}')
            break;
        // key (jsonValid guaranteed the structure; scan the string)
        size_t keyEnd = skipValue(line_, pos);
        std::string key =
            jsonUnescape(line_.substr(pos + 1, keyEnd - pos - 2));
        pos = keyEnd;
        while (pos < n && (std::isspace(
                   static_cast<unsigned char>(line_[pos])) ||
                           line_[pos] == ':'))
            pos++;
        size_t valEnd = skipValue(line_, pos);
        spans_.emplace(key, std::make_pair(pos, valEnd));
        pos = valEnd;
    }
    valid_ = true;
}

std::vector<std::string>
JsonLineView::keys() const
{
    std::vector<std::string> out;
    out.reserve(spans_.size());
    for (const auto &kv : spans_)
        out.push_back(kv.first);
    return out;
}

bool
JsonLineView::getRaw(const std::string &key, std::string &out) const
{
    auto it = spans_.find(key);
    if (it == spans_.end())
        return false;
    out = line_.substr(it->second.first,
                       it->second.second - it->second.first);
    return true;
}

bool
JsonLineView::getString(const std::string &key, std::string &out) const
{
    std::string raw;
    if (!getRaw(key, raw) || raw.size() < 2 || raw.front() != '"' ||
        raw.back() != '"')
        return false;
    out = jsonUnescape(raw.substr(1, raw.size() - 2));
    return true;
}

bool
JsonLineView::getU64(const std::string &key, uint64_t &out) const
{
    std::string raw;
    if (!getRaw(key, raw) || raw.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (errno != 0 || end != raw.c_str() + raw.size())
        return false;
    out = v;
    return true;
}

bool
JsonLineView::getDouble(const std::string &key, double &out) const
{
    std::string raw;
    if (!getRaw(key, raw) || raw.empty())
        return false;
    if (raw == "null") {
        // Our writer maps NaN/Inf to null; surface that as NaN.
        out = std::nan("");
        return true;
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(raw.c_str(), &end);
    if (errno != 0 || end != raw.c_str() + raw.size())
        return false;
    out = v;
    return true;
}

bool
JsonLineView::getBool(const std::string &key, bool &out) const
{
    std::string raw;
    if (!getRaw(key, raw))
        return false;
    if (raw == "true") {
        out = true;
        return true;
    }
    if (raw == "false") {
        out = false;
        return true;
    }
    return false;
}

} // namespace isrf
