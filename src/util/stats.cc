#include "util/stats.h"

#include "util/log.h"

namespace isrf {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        panic("Histogram: invalid range [%f, %f) x %zu", lo, hi, buckets);
}

void
Histogram::sample(double v, uint64_t weight)
{
    total_ += weight;
    weightedSum_ += v * static_cast<double>(weight);
    if (v < lo_) {
        underflow_ += weight;
    } else if (v >= hi_) {
        overflow_ += weight;
    } else {
        auto idx = static_cast<size_t>(
            (v - lo_) / (hi_ - lo_) * static_cast<double>(buckets_.size()));
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx] += weight;
    }
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    underflow_ = overflow_ = total_ = 0;
    weightedSum_ = 0;
}

double
Histogram::bucketLow(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(buckets_.size());
}

double
Histogram::bucketHigh(size_t i) const
{
    return bucketLow(i + 1);
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, double lo, double hi,
                     size_t buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
    return it->second;
}

uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
Histogram::saveState(SnapshotWriter &w) const
{
    for (uint64_t b : buckets_)
        w.u64(b);
    w.u64(underflow_);
    w.u64(overflow_);
    w.u64(total_);
    w.f64(weightedSum_);
}

bool
Histogram::loadState(SnapshotReader &r)
{
    for (uint64_t &b : buckets_)
        if (!r.u64(b))
            return false;
    return r.u64(underflow_) && r.u64(overflow_) && r.u64(total_) &&
           r.f64(weightedSum_);
}

void
StatGroup::saveState(SnapshotWriter &w) const
{
    w.u64(counters_.size());
    for (const auto &kv : counters_) {
        w.str(kv.first);
        w.u64(kv.second.value());
    }
    w.u64(averages_.size());
    for (const auto &kv : averages_) {
        w.str(kv.first);
        kv.second.saveState(w);
    }
    w.u64(histograms_.size());
    for (const auto &kv : histograms_) {
        w.str(kv.first);
        w.f64(kv.second.lo_);
        w.f64(kv.second.hi_);
        w.u64(kv.second.buckets_.size());
        kv.second.saveState(w);
    }
}

bool
StatGroup::loadState(SnapshotReader &r)
{
    // Restore in place: overwrite / create / zero, never erase, so a
    // component's cached pointer into one of these maps (a lazily
    // fetched Counter or Histogram) survives the restore.
    uint64_t n = 0;
    if (!r.len(n, 9))
        return false;
    std::map<std::string, Counter> loadedCounters;
    for (uint64_t i = 0; i < n; i++) {
        std::string name;
        uint64_t v = 0;
        if (!r.str(name) || !r.u64(v))
            return false;
        loadedCounters[name].set(v);
        counters_[name].set(v);
    }
    for (auto &kv : counters_)
        if (!loadedCounters.count(kv.first))
            kv.second.reset();

    if (!r.len(n, 9))
        return false;
    std::map<std::string, bool> seenAverages;
    for (uint64_t i = 0; i < n; i++) {
        std::string name;
        if (!r.str(name) || !averages_[name].loadState(r))
            return false;
        seenAverages[name] = true;
    }
    for (auto &kv : averages_)
        if (!seenAverages.count(kv.first))
            kv.second.reset();

    if (!r.len(n, 9))
        return false;
    std::map<std::string, bool> seenHistograms;
    for (uint64_t i = 0; i < n; i++) {
        std::string name;
        double lo = 0, hi = 1;
        uint64_t nbuckets = 0;
        if (!r.str(name) || !r.f64(lo) || !r.f64(hi) ||
            !r.len(nbuckets, 8))
            return false;
        if (nbuckets == 0 || hi <= lo) {
            r.markFailed();
            return false;
        }
        Histogram &h =
            histogram(name, lo, hi, static_cast<size_t>(nbuckets));
        if (h.buckets_.size() != nbuckets) {
            // Geometry drift between save and load builds.
            r.markFailed();
            return false;
        }
        if (!h.loadState(r))
            return false;
        seenHistograms[name] = true;
    }
    for (auto &kv : histograms_)
        if (!seenHistograms.count(kv.first))
            kv.second.reset();
    return true;
}

std::vector<std::string>
StatGroup::formatRows() const
{
    std::vector<std::string> rows;
    for (const auto &kv : counters_) {
        rows.push_back(strprintf("%s.%s = %llu", name_.c_str(),
            kv.first.c_str(),
            static_cast<unsigned long long>(kv.second.value())));
    }
    for (const auto &kv : averages_) {
        rows.push_back(strprintf("%s.%s = %.4f (n=%llu)", name_.c_str(),
            kv.first.c_str(), kv.second.mean(),
            static_cast<unsigned long long>(kv.second.count())));
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        std::string buckets;
        for (size_t i = 0; i < h.buckets().size(); i++) {
            if (i)
                buckets += " ";
            buckets += strprintf("%llu",
                static_cast<unsigned long long>(h.buckets()[i]));
        }
        rows.push_back(strprintf(
            "%s.%s = mean=%.3f n=%llu [%s] uf=%llu of=%llu",
            name_.c_str(), kv.first.c_str(), h.mean(),
            static_cast<unsigned long long>(h.totalSamples()),
            buckets.c_str(),
            static_cast<unsigned long long>(h.underflow()),
            static_cast<unsigned long long>(h.overflow())));
    }
    return rows;
}

} // namespace isrf
