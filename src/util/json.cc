#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/log.h"

namespace isrf {

void
JsonWriter::preValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ << ",";
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    out_ << "{";
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (needComma_.empty())
        panic("JsonWriter: endObject with no open container");
    needComma_.pop_back();
    out_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    out_ << "[";
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (needComma_.empty())
        panic("JsonWriter: endArray with no open container");
    needComma_.pop_back();
    out_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (needComma_.empty())
        panic("JsonWriter: key() outside an object");
    if (needComma_.back())
        out_ << ",";
    needComma_.back() = true;
    out_ << "\"" << escape(k) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    out_ << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        out_ << "null";  // JSON has no Inf/NaN
        return *this;
    }
    out_ << strprintf("%.10g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    preValue();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    preValue();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    preValue();
    out_ << json;
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

// ----------------------------------------------------------------------
// Validator: recursive-descent over the RFC 8259 grammar.
// ----------------------------------------------------------------------

namespace {

struct JsonCursor
{
    const char *p;
    const char *end;
    int depth = 0;

    bool atEnd() const { return p >= end; }
    char
    peek() const
    {
        return atEnd() ? '\0' : *p;
    }
    void
    skipWs()
    {
        while (!atEnd() &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            p++;
    }
};

bool parseValue(JsonCursor &c);

bool
parseLiteral(JsonCursor &c, const char *lit)
{
    size_t n = std::char_traits<char>::length(lit);
    if (static_cast<size_t>(c.end - c.p) < n)
        return false;
    if (std::char_traits<char>::compare(c.p, lit, n) != 0)
        return false;
    c.p += n;
    return true;
}

bool
parseString(JsonCursor &c)
{
    if (c.peek() != '"')
        return false;
    c.p++;
    while (!c.atEnd()) {
        char ch = *c.p++;
        if (ch == '"')
            return true;
        if (static_cast<unsigned char>(ch) < 0x20)
            return false;
        if (ch == '\\') {
            if (c.atEnd())
                return false;
            char esc = *c.p++;
            switch (esc) {
              case '"': case '\\': case '/': case 'b': case 'f':
              case 'n': case 'r': case 't':
                break;
              case 'u':
                for (int i = 0; i < 4; i++) {
                    if (c.atEnd() ||
                        !std::isxdigit(
                            static_cast<unsigned char>(*c.p)))
                        return false;
                    c.p++;
                }
                break;
              default:
                return false;
            }
        }
    }
    return false;  // unterminated
}

bool
parseNumber(JsonCursor &c)
{
    const char *start = c.p;
    if (c.peek() == '-')
        c.p++;
    if (!std::isdigit(static_cast<unsigned char>(c.peek())))
        return false;
    if (c.peek() == '0') {
        c.p++;
    } else {
        while (std::isdigit(static_cast<unsigned char>(c.peek())))
            c.p++;
    }
    if (c.peek() == '.') {
        c.p++;
        if (!std::isdigit(static_cast<unsigned char>(c.peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(c.peek())))
            c.p++;
    }
    if (c.peek() == 'e' || c.peek() == 'E') {
        c.p++;
        if (c.peek() == '+' || c.peek() == '-')
            c.p++;
        if (!std::isdigit(static_cast<unsigned char>(c.peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(c.peek())))
            c.p++;
    }
    return c.p > start;
}

bool
parseObject(JsonCursor &c)
{
    c.p++;  // consume '{'
    c.skipWs();
    if (c.peek() == '}') {
        c.p++;
        return true;
    }
    while (true) {
        c.skipWs();
        if (!parseString(c))
            return false;
        c.skipWs();
        if (c.peek() != ':')
            return false;
        c.p++;
        if (!parseValue(c))
            return false;
        c.skipWs();
        if (c.peek() == ',') {
            c.p++;
            continue;
        }
        if (c.peek() == '}') {
            c.p++;
            return true;
        }
        return false;
    }
}

bool
parseArray(JsonCursor &c)
{
    c.p++;  // consume '['
    c.skipWs();
    if (c.peek() == ']') {
        c.p++;
        return true;
    }
    while (true) {
        if (!parseValue(c))
            return false;
        c.skipWs();
        if (c.peek() == ',') {
            c.p++;
            continue;
        }
        if (c.peek() == ']') {
            c.p++;
            return true;
        }
        return false;
    }
}

bool
parseValue(JsonCursor &c)
{
    if (++c.depth > 512)
        return false;  // runaway nesting
    c.skipWs();
    bool ok;
    switch (c.peek()) {
      case '{': ok = parseObject(c); break;
      case '[': ok = parseArray(c); break;
      case '"': ok = parseString(c); break;
      case 't': ok = parseLiteral(c, "true"); break;
      case 'f': ok = parseLiteral(c, "false"); break;
      case 'n': ok = parseLiteral(c, "null"); break;
      default: ok = parseNumber(c); break;
    }
    c.depth--;
    return ok;
}

} // namespace

bool
jsonValid(const std::string &text)
{
    JsonCursor c{text.data(), text.data() + text.size()};
    if (!parseValue(c))
        return false;
    c.skipWs();
    return c.atEnd();
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace isrf
