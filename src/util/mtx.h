/**
 * @file
 * Tolerant MatrixMarket (.mtx) reader + CSR conversion + synthetic
 * sparse-matrix generators for the sparse workload family.
 *
 * The reader accepts the coordinate format emitted by SuiteSparse and
 * friends: a `%%MatrixMarket` banner, `%` comment lines, a size line,
 * and 1-based `row col [value]` entries. `pattern` matrices get unit
 * values; `symmetric` / `skew-symmetric` matrices are expanded to their
 * full (general) form. Parsing collects EVERY violation with its line
 * number before failing — the util/env collect-all style — so a user
 * fixes a malformed file in one round trip instead of one error at a
 * time. Duplicate entries are legal input and are summed during CSR
 * conversion.
 */
#ifndef ISRF_UTIL_MTX_H
#define ISRF_UTIL_MTX_H

#include <cstdint>
#include <string>
#include <vector>

namespace isrf {

/** Parsed MatrixMarket matrix: 0-based COO after symmetry expansion. */
struct MtxMatrix
{
    enum class Symmetry { General, Symmetric, SkewSymmetric };

    uint32_t rows = 0;
    uint32_t cols = 0;
    /** Entry count declared by the size line (pre-expansion). */
    uint64_t declaredEntries = 0;
    bool pattern = false;
    Symmetry symmetry = Symmetry::General;
    /** COO triplets in file order, symmetric images appended. */
    std::vector<uint32_t> rowIdx;
    std::vector<uint32_t> colIdx;
    std::vector<float> vals;

    uint64_t nnz() const { return rowIdx.size(); }
};

/**
 * Parse MatrixMarket text. On any violation returns false with every
 * problem (line-numbered) appended to `errs`; `out` is left in an
 * unspecified state. `errs` may be null to discard diagnostics.
 */
bool mtxParse(const std::string &text, MtxMatrix &out,
              std::vector<std::string> *errs);

/** Read + parse a .mtx file; unreadable files are one more error. */
bool mtxReadFile(const std::string &path, MtxMatrix &out,
                 std::vector<std::string> *errs);

/** Compressed sparse row matrix (the SpMV workload's input form). */
struct CsrMatrix
{
    uint32_t rows = 0;
    uint32_t cols = 0;
    std::vector<uint64_t> rowPtr;  ///< rows + 1 entries
    std::vector<uint32_t> col;     ///< sorted within each row
    std::vector<float> val;

    uint64_t nnz() const { return col.size(); }
};

/** COO -> CSR: sorts by (row, col) and sums duplicate entries. */
CsrMatrix cooToCsr(const MtxMatrix &m);

// ----------------------------------------------------------------------
// Synthetic generators (CI needs no checked-in binaries)
// ----------------------------------------------------------------------

/** Banded matrix: each row touches [i-halfBand, i+halfBand]. */
CsrMatrix mtxGenBanded(uint32_t n, uint32_t halfBand, uint64_t seed);

/** Uniform-random matrix: ~avgDeg entries per row, columns uniform. */
CsrMatrix mtxGenUniform(uint32_t n, uint32_t avgDeg, uint64_t seed);

/**
 * Power-law matrix: row degrees follow a heavy-tailed distribution
 * (a few very long rows) and columns are skewed toward low indices.
 * `alpha` > 1 controls the tail weight (larger = milder skew).
 */
CsrMatrix mtxGenPowerLaw(uint32_t n, uint32_t avgDeg, double alpha,
                         uint64_t seed);

} // namespace isrf

#endif // ISRF_UTIL_MTX_H
