#include "util/env.h"

#include <cerrno>
#include <cstdlib>

#include "util/log.h"

namespace isrf {

bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    // strtoull happily accepts "-1" (wrapping) and leading whitespace;
    // reject anything but plain digits up front.
    for (char c : text)
        if (c < '0' || c > '9')
            return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

uint64_t
envU64(const char *name, uint64_t def, std::vector<std::string> *errs)
{
    const char *raw = std::getenv(name);
    if (!raw)
        return def;
    uint64_t v = 0;
    if (parseU64(raw, v))
        return v;
    if (errs) {
        errs->push_back(strprintf("%s='%s' is not a valid unsigned "
                                  "integer; using default %llu",
                                  name, raw,
                                  static_cast<unsigned long long>(def)));
    }
    return def;
}

std::string
envStr(const char *name)
{
    const char *raw = std::getenv(name);
    return raw ? std::string(raw) : std::string();
}

void
warnEnvErrors(const std::vector<std::string> &errs)
{
    if (errs.empty())
        return;
    std::string msg = "ignoring " + std::to_string(errs.size()) +
        " invalid environment setting(s):";
    for (const auto &e : errs)
        msg += "\n  - " + e;
    ISRF_WARN("%s", msg.c_str());
}

} // namespace isrf
