#include "util/env.h"

#include <cerrno>
#include <cstdlib>

#include "util/log.h"

namespace isrf {

bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    // strtoull happily accepts "-1" (wrapping) and leading whitespace;
    // reject anything but plain digits up front.
    for (char c : text)
        if (c < '0' || c > '9')
            return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseI64(const std::string &text, int64_t &out)
{
    bool neg = !text.empty() && text[0] == '-';
    uint64_t mag = 0;
    if (!parseU64(neg ? text.substr(1) : text, mag))
        return false;
    if (neg) {
        if (mag > 0x8000000000000000ull)
            return false;
        out = -static_cast<int64_t>(mag - 1) - 1;
    } else {
        if (mag > 0x7fffffffffffffffull)
            return false;
        out = static_cast<int64_t>(mag);
    }
    return true;
}

bool
parseF64(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    // strtod accepts leading whitespace, "inf", "nan", and hex floats;
    // restrict to plain decimal notation up front.
    for (char c : text) {
        if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' &&
            c != 'e' && c != 'E')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

uint64_t
envU64(const char *name, uint64_t def, std::vector<std::string> *errs)
{
    const char *raw = std::getenv(name);
    if (!raw)
        return def;
    uint64_t v = 0;
    if (parseU64(raw, v))
        return v;
    if (errs) {
        errs->push_back(strprintf("%s='%s' is not a valid unsigned "
                                  "integer; using default %llu",
                                  name, raw,
                                  static_cast<unsigned long long>(def)));
    }
    return def;
}

std::string
envStr(const char *name)
{
    const char *raw = std::getenv(name);
    return raw ? std::string(raw) : std::string();
}

void
warnEnvErrors(const std::vector<std::string> &errs)
{
    if (errs.empty())
        return;
    std::string msg = "ignoring " + std::to_string(errs.size()) +
        " invalid environment setting(s):";
    for (const auto &e : errs)
        msg += "\n  - " + e;
    ISRF_WARN("%s", msg.c_str());
}

} // namespace isrf
