/**
 * @file
 * Validated environment-variable parsing.
 *
 * The ISRF_* tuning variables (ISRF_SAMPLE, ISRF_TRACE_CAPACITY, ...)
 * used to be read with atol(), which silently accepts garbage and
 * overflows. These helpers parse strictly (strtoull + errno +
 * end-pointer checks) and let callers collect every violation before
 * warning once, matching MachineConfig::validate()'s
 * collect-all-violations style.
 */
#ifndef ISRF_UTIL_ENV_H
#define ISRF_UTIL_ENV_H

#include <cstdint>
#include <string>
#include <vector>

namespace isrf {

/**
 * Strictly parse a base-10 unsigned integer: no sign, no trailing
 * junk, no overflow. @return false (out untouched) on any violation.
 */
bool parseU64(const std::string &text, uint64_t &out);

/**
 * Strictly parse a base-10 signed integer: optional leading '-', no
 * trailing junk, no overflow. @return false (out untouched) on any
 * violation.
 */
bool parseI64(const std::string &text, int64_t &out);

/**
 * Strictly parse a finite decimal floating-point number: no trailing
 * junk, no inf/nan, no hex floats. @return false (out untouched) on
 * any violation.
 */
bool parseF64(const std::string &text, double &out);

/**
 * Read an environment variable as a u64. On unset, returns `def`.
 * On a malformed or overflowing value, appends a description to
 * `errs` and returns `def` (warn-and-default; never fatal).
 */
uint64_t envU64(const char *name, uint64_t def,
                std::vector<std::string> *errs);

/** Read an environment variable as a string ("" when unset). */
std::string envStr(const char *name);

/** Emit one warning summarizing all collected env violations. */
void warnEnvErrors(const std::vector<std::string> &errs);

} // namespace isrf

#endif // ISRF_UTIL_ENV_H
