/**
 * @file
 * Versioned simulation snapshots (DESIGN.md §17).
 *
 * A Snapshot is a set of tagged, length-prefixed sections, each
 * protected by an FNV-1a checksum, behind a header carrying the format
 * version, the job fingerprint (driver/sweep_runner.h) and a machine
 * geometry hash. Components serialize themselves into sections through
 * SnapshotWriter and restore through the bounds-checked
 * SnapshotReader; Machine::saveSnapshot()/loadSnapshot() orchestrate
 * the section registry.
 *
 * Durability contract: files are written tmp+rename+fsync, so a crash
 * leaves either the previous checkpoint or the new one, never a blend.
 * On load every checksum is verified before any simulator state is
 * touched; a torn, truncated or bit-flipped file is detected,
 * quarantined (renamed to <path>.bad) and the job restarts from zero —
 * a corrupt checkpoint can cost time, never correctness.
 */
#ifndef ISRF_UTIL_SNAPSHOT_H
#define ISRF_UTIL_SNAPSHOT_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace isrf {

/** Append-only byte sink for one snapshot section. */
class SnapshotWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    u32(uint32_t v)
    {
        char tmp[4];
        std::memcpy(tmp, &v, 4);
        buf_.append(tmp, 4);
    }

    void
    u64(uint64_t v)
    {
        char tmp[8];
        std::memcpy(tmp, &v, 8);
        buf_.append(tmp, 8);
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** Doubles travel as bit patterns: restore is byte-exact. */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    void bytes(const void *p, size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    const std::string &data() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Bounds-checked reader over one section payload. Every accessor
 * returns false (and latches a sticky failure) on out-of-bounds
 * reads, so a malformed payload can never crash the loader — the
 * caller checks ok()/atEnd() and falls back to a from-zero run.
 */
class SnapshotReader
{
  public:
    SnapshotReader(const void *data, size_t size)
        : p_(static_cast<const uint8_t *>(data)), size_(size)
    {
    }
    explicit SnapshotReader(const std::string &payload)
        : SnapshotReader(payload.data(), payload.size())
    {
    }

    bool
    u8(uint8_t &v)
    {
        if (!need(1))
            return false;
        v = p_[pos_++];
        return true;
    }

    bool
    b(bool &v)
    {
        uint8_t raw;
        if (!u8(raw))
            return false;
        v = raw != 0;
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        if (!need(4))
            return false;
        std::memcpy(&v, p_ + pos_, 4);
        pos_ += 4;
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        if (!need(8))
            return false;
        std::memcpy(&v, p_ + pos_, 8);
        pos_ += 8;
        return true;
    }

    bool
    i64(int64_t &v)
    {
        uint64_t raw;
        if (!u64(raw))
            return false;
        v = static_cast<int64_t>(raw);
        return true;
    }

    bool
    f64(double &v)
    {
        uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, 8);
        return true;
    }

    bool
    str(std::string &s)
    {
        uint64_t n;
        if (!len(n, 1))
            return false;
        s.assign(reinterpret_cast<const char *>(p_ + pos_),
                 static_cast<size_t>(n));
        pos_ += static_cast<size_t>(n);
        return true;
    }

    /**
     * Read a container length and validate it against the remaining
     * payload (n elements of at least elemBytes each must fit), so a
     * corrupted count can never drive a huge allocation or a long
     * loop over garbage.
     */
    bool
    len(uint64_t &n, size_t elemBytes)
    {
        if (!u64(n))
            return false;
        if (elemBytes != 0 &&
            n > (size_ - pos_) / elemBytes) {
            fail_ = true;
            return false;
        }
        return true;
    }

    bool ok() const { return !fail_; }
    size_t remaining() const { return fail_ ? 0 : size_ - pos_; }
    /** A fully-consumed, error-free payload. */
    bool atEnd() const { return ok() && pos_ == size_; }
    void markFailed() { fail_ = true; }

  private:
    bool
    need(size_t n)
    {
        if (fail_ || size_ - pos_ < n) {
            fail_ = true;
            return false;
        }
        return true;
    }

    const uint8_t *p_;
    size_t size_;
    size_t pos_ = 0;
    bool fail_ = false;
};

/** Four-character section tag ("SRF ", "CLUS", ...). */
constexpr uint32_t
snapTag(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

/**
 * Section registry (DESIGN.md §17). Adding a section is
 * backward-compatible only together with a kSnapshotFormatVersion
 * bump: the loader refuses versions it does not know.
 */
constexpr uint32_t kSnapMachine = snapTag('M', 'A', 'C', 'H');
constexpr uint32_t kSnapSrf = snapTag('S', 'R', 'F', ' ');
constexpr uint32_t kSnapCrossbar = snapTag('X', 'B', 'A', 'R');
constexpr uint32_t kSnapClusters = snapTag('C', 'L', 'U', 'S');
constexpr uint32_t kSnapMemory = snapTag('M', 'E', 'M', 'S');
constexpr uint32_t kSnapWatchdog = snapTag('W', 'D', 'O', 'G');
constexpr uint32_t kSnapSampler = snapTag('S', 'A', 'M', 'P');
constexpr uint32_t kSnapFaults = snapTag('F', 'I', 'N', 'J');
constexpr uint32_t kSnapProgram = snapTag('P', 'R', 'O', 'G');

/** Bumped whenever any section layout changes. */
constexpr uint32_t kSnapshotFormatVersion = 1;

/**
 * An in-memory snapshot: header fields plus tagged sections. The
 * serialized layout is
 *
 *   "ISRFSNAP" u32 version  u64 fingerprint  u64 cycle  u64 geom
 *   u32 nsections  u64 headerHash
 *   nsections x { u32 tag  u64 len  payload[len]  u64 sectionHash }
 *
 * where each hash is FNV-1a (util/hash.h) over the bytes it guards
 * (header prefix resp. tag+len+payload). parse() verifies every hash
 * and all framing before returning success.
 */
struct Snapshot
{
    uint32_t version = kSnapshotFormatVersion;
    uint64_t fingerprint = 0;
    /** Engine clock at save time. */
    uint64_t cycle = 0;
    /** Machine::geometryHash() at save time; checked before restore. */
    uint64_t geometry = 0;

    struct Section
    {
        uint32_t tag = 0;
        std::string payload;
    };
    std::vector<Section> sections;

    void addSection(uint32_t tag, const SnapshotWriter &w);
    /** nullptr when the tag is absent. */
    const std::string *findSection(uint32_t tag) const;

    std::string serialize() const;
    /**
     * Parse + verify a serialized snapshot: magic, version, framing
     * and every checksum. On failure returns false with a diagnostic
     * in err and leaves *this unspecified.
     */
    bool parse(const std::string &bytes, std::string &err);

    /** tmp + rename + fsync; false (with err) on any I/O failure. */
    bool writeAtomic(const std::string &path, std::string &err) const;
};

/** Outcome of loading a checkpoint file from disk. */
enum class SnapshotLoad
{
    Ok,       ///< parsed, verified, fingerprint matched
    Missing,  ///< no file at path — first run, start from zero
    Corrupt,  ///< torn / truncated / bit-flipped — quarantine
    Stale,    ///< valid file for a different job fingerprint
};

/**
 * Read and fully verify a checkpoint file. Missing file: err empty.
 * Corrupt/Stale: err carries the diagnostic; the caller decides
 * whether to quarantine.
 */
SnapshotLoad loadSnapshotFile(const std::string &path,
                              uint64_t expectFingerprint,
                              Snapshot &out, std::string &err);

/**
 * Per-job checkpoint policy + accounting, shared between the run loop
 * (StreamProgram::run saves/restores through it), the sweep runner
 * (creates one per job, aggregates its counters into SweepTiming) and
 * the daemon (requests asynchronous saves on its periodic tick and
 * during SIGTERM drain via requestSave()).
 *
 * Threading: one job thread owns the context; only requestSave() may
 * be called from other threads.
 */
class CheckpointContext
{
  public:
    CheckpointContext(std::string path, uint64_t fingerprint,
                      uint64_t everyCycles)
        : path_(std::move(path)), fingerprint_(fingerprint),
          everyCycles_(everyCycles)
    {
    }

    const std::string &path() const { return path_; }
    uint64_t fingerprint() const { return fingerprint_; }
    uint64_t everyCycles() const { return everyCycles_; }

    /** Async save request (daemon tick / drain); one atomic store. */
    void
    requestSave()
    {
        saveRequested_.store(true, std::memory_order_relaxed);
    }

    /** Should the run loop save at cycle `now`? */
    bool
    saveDue(uint64_t now) const
    {
        if (saveRequested_.load(std::memory_order_relaxed))
            return true;
        return everyCycles_ != 0 &&
               now - lastSaveCycle_ >= everyCycles_;
    }

    void
    noteSaved(uint64_t cycle)
    {
        saveRequested_.store(false, std::memory_order_relaxed);
        lastSaveCycle_ = cycle;
        saves_++;
    }

    /** Also resets the periodic cadence so an unwritable directory
     *  warns once per interval, not once per cycle. */
    void
    noteSaveFailed(uint64_t cycle)
    {
        saveRequested_.store(false, std::memory_order_relaxed);
        lastSaveCycle_ = cycle;
        saveFailures_++;
    }

    void
    noteRestored(uint64_t cycle)
    {
        lastSaveCycle_ = cycle;
        restoredCycle_ = cycle;
        restores_++;
    }

    /** Called once per run-loop exit with the cycles this process
     *  actually simulated (final minus post-restore start). */
    void addExecuted(uint64_t cycles) { executedCycles_ += cycles; }

    void noteQuarantined() { quarantined_++; }

    /** Remove the checkpoint file (job finished for good). */
    void removeFile();

    uint64_t saves() const { return saves_; }
    uint64_t saveFailures() const { return saveFailures_; }
    uint64_t restores() const { return restores_; }
    uint64_t quarantined() const { return quarantined_; }
    /** Cycles actually simulated by this process (not restored). */
    uint64_t executedCycles() const { return executedCycles_; }
    uint64_t restoredCycle() const { return restoredCycle_; }

    /**
     * Test hook: when set, the run loop returns (status Cancelled)
     * right after the first successful save, so tests can exercise
     * "save at cycle C, load into a fresh Machine" deterministically.
     */
    bool stopAfterSave = false;

  private:
    std::string path_;
    uint64_t fingerprint_;
    uint64_t everyCycles_;
    std::atomic<bool> saveRequested_{false};
    uint64_t lastSaveCycle_ = 0;
    uint64_t restoredCycle_ = 0;
    uint64_t saves_ = 0;
    uint64_t saveFailures_ = 0;
    uint64_t restores_ = 0;
    uint64_t quarantined_ = 0;
    uint64_t executedCycles_ = 0;
};

/** Canonical per-job checkpoint path: <dir>/job-<fingerprint>.ckpt. */
std::string checkpointFilePath(const std::string &dir,
                               uint64_t jobFingerprint);

/** mkdir -p; false (with err) when a component cannot be created. */
bool ensureCheckpointDir(const std::string &dir, std::string &err);

/**
 * Rename a bad checkpoint to <path>.bad (overwriting any previous
 * quarantine) and warn. Never throws; best effort.
 */
void quarantineSnapshotFile(const std::string &path,
                            const std::string &why);

} // namespace isrf

#endif // ISRF_UTIL_SNAPSHOT_H
