/**
 * @file
 * Append-only JSON-Lines persistence for crash-safe journals.
 *
 * A JSONL journal is one JSON object per line. JsonlWriter appends one
 * fsync'd record at a time, so after a SIGKILL at any instant the file
 * contains every previously appended record intact plus at most one
 * torn final line. readJsonl() is the matching tolerant reader: it
 * returns every complete, valid record and silently drops a torn
 * final line — but treats an invalid *interior* line as corruption
 * (that can't be produced by a torn append) and reports an error
 * instead of guessing.
 *
 * JsonLineView is a minimal field extractor over one record line
 * written by JsonWriter (util/json.h): it indexes the record's
 * top-level keys without building a DOM, which is all the sweep
 * journal needs to replay results byte-identically (nested values are
 * re-spliced verbatim via raw()).
 */
#ifndef ISRF_UTIL_JSONL_H
#define ISRF_UTIL_JSONL_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace isrf {

/** Appends one durable (fsync'd) JSON record per line. */
class JsonlWriter
{
  public:
    JsonlWriter() = default;
    ~JsonlWriter() { close(); }
    JsonlWriter(const JsonlWriter &) = delete;
    JsonlWriter &operator=(const JsonlWriter &) = delete;

    /**
     * Open `path` for appending (append=true) or truncate it
     * (append=false). @return false on I/O error.
     */
    bool open(const std::string &path, bool append);

    bool isOpen() const { return f_ != nullptr; }
    const std::string &path() const { return path_; }

    /**
     * Append one record and flush+fsync it. `json` must be a single
     * valid JSON value with no embedded newline (the writer validates
     * and refuses otherwise — an invalid record would poison every
     * later read of the journal). @return false on validation or I/O
     * failure.
     */
    bool append(const std::string &json);

    void close();

  private:
    std::FILE *f_ = nullptr;
    std::string path_;
};

/** Result of reading a JSONL file tolerantly. */
struct JsonlReadResult
{
    /** Every complete, valid record, in file order. */
    std::vector<std::string> records;
    /** True when a torn (incomplete, invalid) final line was dropped. */
    bool tornFinalLine = false;
    /** Bytes discarded with the torn final line. */
    size_t tornBytes = 0;
    /**
     * Blank lines skipped while reading. Together with tornFinalLine
     * this is the full accounting of input the tolerant reader did not
     * return as records — callers (e.g. sweep --resume) surface both
     * so operators can tell a clean recovery from a lossy one.
     */
    size_t blankLines = 0;
    /** Non-empty on unreadable file or corrupt interior line. */
    std::string error;

    bool ok() const { return error.empty(); }

    /** Lines the reader consumed without returning a record. */
    size_t droppedLines() const
    {
        return blankLines + (tornFinalLine ? 1 : 0);
    }
};

/**
 * Read a JSONL file, recovering every complete record (see file
 * comment for the torn-line contract). A missing file is an error —
 * callers distinguish "no journal yet" themselves.
 */
JsonlReadResult readJsonl(const std::string &path);

/**
 * Index of one JSON object line's top-level fields.
 *
 * Built for machine-written records (JsonWriter output): exact
 * top-level key spans are recorded, nested containers are kept as raw
 * text. valid() is false when the line is not a JSON object — getters
 * then all fail.
 */
class JsonLineView
{
  public:
    explicit JsonLineView(std::string line);

    bool valid() const { return valid_; }

    /** Top-level keys, sorted (serialized order is not preserved). */
    std::vector<std::string> keys() const;

    /** Raw value text exactly as serialized (objects/arrays too). */
    bool getRaw(const std::string &key, std::string &out) const;
    /** String value, unescaped. */
    bool getString(const std::string &key, std::string &out) const;
    bool getU64(const std::string &key, uint64_t &out) const;
    bool getDouble(const std::string &key, double &out) const;
    bool getBool(const std::string &key, bool &out) const;

  private:
    std::string line_;
    bool valid_ = false;
    /** key -> [begin, end) value span in line_. */
    std::map<std::string, std::pair<size_t, size_t>> spans_;
};

/** Decode a JSON string literal's body (no quotes) to UTF-8. */
std::string jsonUnescape(const std::string &s);

} // namespace isrf

#endif // ISRF_UTIL_JSONL_H
