#include "util/hash.h"

#include <cstdio>

namespace isrf {

bool
fnv1aFile(const std::string &path, uint64_t &bytes, uint64_t &hash)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    uint64_t n = 0;
    uint64_t h = kFnvBasis;
    unsigned char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        for (size_t i = 0; i < got; i++) {
            h ^= buf[i];
            h *= kFnvPrime;
        }
        n += got;
    }
    bool ioErr = std::ferror(f) != 0;
    std::fclose(f);
    if (ioErr)
        return false;
    bytes = n;
    hash = h;
    return true;
}

} // namespace isrf
