/**
 * @file
 * ASCII table and CSV rendering used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */
#ifndef ISRF_UTIL_TABLE_H
#define ISRF_UTIL_TABLE_H

#include <string>
#include <vector>

namespace isrf {

/**
 * Simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "Base", "ISRF4"});
 *   t.addRow({"FFT 2D", "1.00", "0.45"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a row of doubles formatted with the given precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 3);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render as an aligned ASCII table with a border. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string renderCsv() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_;
};

/** Format a double with fixed precision into a string. */
std::string fmtDouble(double v, int precision = 3);

/**
 * Render an ASCII bar for a value in [0, maxV]: used to sketch
 * figure-style output in terminal benchmark reports.
 */
std::string asciiBar(double v, double maxV, size_t width = 40);

} // namespace isrf

#endif // ISRF_UTIL_TABLE_H
