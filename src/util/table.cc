#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/log.h"

namespace isrf {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        panic("Table: empty header");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size()) {
        panic("Table: row arity %zu != header arity %zu", cells.size(),
              header_.size());
    }
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmtDouble(v, precision));
    addRow(std::move(cells));
}

void
Table::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); c++)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto hline = [&]() {
        std::string s = "+";
        for (size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (size_t c = 0; c < cells.size(); c++) {
            s += " " + cells[c] +
                std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::string out = hline() + line(header_) + hline();
    for (size_t r = 0; r < rows_.size(); r++) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
                separators_.end() && r != 0) {
            out += hline();
        }
        out += line(rows_[r]);
    }
    out += hline();
    return out;
}

std::string
Table::renderCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += "\"\"";
            else
                q += ch;
        }
        q += "\"";
        return q;
    };
    std::ostringstream out;
    for (size_t c = 0; c < header_.size(); c++)
        out << (c ? "," : "") << quote(header_[c]);
    out << "\n";
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); c++)
            out << (c ? "," : "") << quote(row[c]);
        out << "\n";
    }
    return out.str();
}

std::string
fmtDouble(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
asciiBar(double v, double maxV, size_t width)
{
    if (maxV <= 0)
        return std::string();
    double frac = std::clamp(v / maxV, 0.0, 1.0);
    auto n = static_cast<size_t>(frac * static_cast<double>(width) + 0.5);
    return std::string(n, '#') + std::string(width - n, ' ');
}

} // namespace isrf
