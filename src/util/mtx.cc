#include "util/mtx.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/log.h"
#include "util/random.h"

namespace isrf {

namespace {

/** Cap on collected diagnostics so fuzzed garbage stays readable. */
constexpr size_t kMaxErrors = 20;

struct ErrorSink
{
    std::vector<std::string> *errs;
    size_t count = 0;

    void
    add(size_t lineNo, const std::string &msg)
    {
        count++;
        if (!errs)
            return;
        if (count == kMaxErrors + 1) {
            errs->push_back("... further errors suppressed");
            return;
        }
        if (count <= kMaxErrors)
            errs->push_back(strprintf("line %zu: %s", lineNo,
                                      msg.c_str()));
    }
};

std::string
lowered(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Split on whitespace; '\r' counts as whitespace (CRLF files). */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            i++;
        size_t start = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])))
            i++;
        if (i > start)
            out.push_back(line.substr(start, i - start));
    }
    return out;
}

bool
parseIndex(const std::string &s, uint64_t &out)
{
    if (s.empty() || s.size() > 19)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    out = v;
    return true;
}

bool
parseValue(const std::string &s, float &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (!end || *end != '\0' || end == s.c_str())
        return false;
    if (!std::isfinite(v))
        return false;
    out = static_cast<float>(v);
    return true;
}

} // namespace

bool
mtxParse(const std::string &text, MtxMatrix &out,
         std::vector<std::string> *errs)
{
    out = MtxMatrix();
    ErrorSink sink{errs};

    // Split into lines; the line number in diagnostics is 1-based.
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(std::move(line));
        pos = nl + 1;
    }
    while (!lines.empty() && lines.back().empty())
        lines.pop_back();

    if (lines.empty()) {
        sink.add(1, "empty file (no MatrixMarket banner)");
        return false;
    }

    // --- banner: %%MatrixMarket matrix coordinate <field> <symmetry> --
    auto banner = fields(lines[0]);
    bool bannerOk = banner.size() >= 5 &&
        lowered(banner[0]) == "%%matrixmarket";
    if (!bannerOk) {
        sink.add(1, "missing '%%MatrixMarket matrix coordinate ...' "
                    "banner");
    } else {
        if (lowered(banner[1]) != "matrix")
            sink.add(1, "object '" + banner[1] +
                        "' unsupported (only 'matrix')");
        if (lowered(banner[2]) != "coordinate")
            sink.add(1, "format '" + banner[2] +
                        "' unsupported (only 'coordinate')");
        std::string field = lowered(banner[3]);
        if (field == "pattern")
            out.pattern = true;
        else if (field != "real" && field != "integer" &&
                 field != "double")
            sink.add(1, "field '" + banner[3] + "' unsupported (only "
                        "real/integer/pattern)");
        std::string sym = lowered(banner[4]);
        if (sym == "general")
            out.symmetry = MtxMatrix::Symmetry::General;
        else if (sym == "symmetric")
            out.symmetry = MtxMatrix::Symmetry::Symmetric;
        else if (sym == "skew-symmetric")
            out.symmetry = MtxMatrix::Symmetry::SkewSymmetric;
        else
            sink.add(1, "symmetry '" + banner[4] + "' unsupported (only "
                        "general/symmetric/skew-symmetric)");
    }

    // --- size line: first non-comment, non-blank line after banner ---
    size_t li = 1;
    while (li < lines.size() &&
           (lines[li].empty() || lines[li][0] == '%'))
        li++;
    if (li >= lines.size()) {
        sink.add(lines.size(), "missing size line "
                               "'<rows> <cols> <entries>'");
        return false;
    }
    auto size = fields(lines[li]);
    uint64_t rows = 0, cols = 0, entries = 0;
    if (size.size() != 3 || !parseIndex(size[0], rows) ||
        !parseIndex(size[1], cols) || !parseIndex(size[2], entries)) {
        sink.add(li + 1, "malformed size line '" + lines[li] +
                         "' (expected '<rows> <cols> <entries>')");
        return false;
    }
    if (rows == 0 || cols == 0)
        sink.add(li + 1, "matrix dimensions must be positive");
    constexpr uint64_t kMaxDim = 1u << 28;
    if (rows > kMaxDim || cols > kMaxDim)
        sink.add(li + 1, strprintf("matrix dimensions exceed the "
                                   "supported maximum %llu",
                                   static_cast<unsigned long long>(
                                       kMaxDim)));
    out.rows = static_cast<uint32_t>(std::min(rows, kMaxDim));
    out.cols = static_cast<uint32_t>(std::min(cols, kMaxDim));
    out.declaredEntries = entries;
    li++;

    // --- entries ----------------------------------------------------
    const size_t valueFields = out.pattern ? 2 : 3;
    uint64_t seen = 0;
    out.rowIdx.reserve(entries);
    out.colIdx.reserve(entries);
    out.vals.reserve(entries);
    for (; li < lines.size(); li++) {
        const std::string &line = lines[li];
        if (line.empty() || line[0] == '%')
            continue;  // tolerated: comments/blanks between entries
        seen++;
        if (seen > entries) {
            if (seen == entries + 1)
                sink.add(li + 1, strprintf(
                    "more entries than the declared %llu",
                    static_cast<unsigned long long>(entries)));
            continue;
        }
        auto f = fields(line);
        uint64_t r = 0, c = 0;
        float v = 1.0f;
        if (f.size() != valueFields || !parseIndex(f[0], r) ||
            !parseIndex(f[1], c) ||
            (!out.pattern && !parseValue(f[2], v))) {
            sink.add(li + 1, "malformed entry '" + line + "'");
            continue;
        }
        if (r < 1 || r > out.rows || c < 1 || c > out.cols) {
            sink.add(li + 1, strprintf(
                "index (%llu, %llu) outside %u x %u",
                static_cast<unsigned long long>(r),
                static_cast<unsigned long long>(c), out.rows,
                out.cols));
            continue;
        }
        if (out.symmetry != MtxMatrix::Symmetry::General && c > r) {
            sink.add(li + 1, "entry above the diagonal in a "
                             "symmetric matrix");
            continue;
        }
        auto r0 = static_cast<uint32_t>(r - 1);
        auto c0 = static_cast<uint32_t>(c - 1);
        out.rowIdx.push_back(r0);
        out.colIdx.push_back(c0);
        out.vals.push_back(v);
        if (out.symmetry != MtxMatrix::Symmetry::General && r0 != c0) {
            out.rowIdx.push_back(c0);
            out.colIdx.push_back(r0);
            out.vals.push_back(
                out.symmetry == MtxMatrix::Symmetry::SkewSymmetric
                    ? -v : v);
        }
    }
    if (seen < entries) {
        sink.add(lines.size(), strprintf(
            "truncated: %llu entr%s declared but only %llu found",
            static_cast<unsigned long long>(entries),
            entries == 1 ? "y" : "ies",
            static_cast<unsigned long long>(seen)));
    }
    return sink.count == 0;
}

bool
mtxReadFile(const std::string &path, MtxMatrix &out,
            std::vector<std::string> *errs)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (errs)
            errs->push_back("cannot read '" + path + "'");
        return false;
    }
    std::string text;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    bool ioErr = std::ferror(f) != 0;
    std::fclose(f);
    if (ioErr) {
        if (errs)
            errs->push_back("I/O error reading '" + path + "'");
        return false;
    }
    return mtxParse(text, out, errs);
}

CsrMatrix
cooToCsr(const MtxMatrix &m)
{
    CsrMatrix csr;
    csr.rows = m.rows;
    csr.cols = m.cols;
    const size_t n = m.rowIdx.size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (m.rowIdx[a] != m.rowIdx[b])
            return m.rowIdx[a] < m.rowIdx[b];
        return m.colIdx[a] < m.colIdx[b];
    });
    csr.rowPtr.assign(static_cast<size_t>(m.rows) + 1, 0);
    for (size_t k : order) {
        uint32_t r = m.rowIdx[k];
        uint32_t c = m.colIdx[k];
        if (!csr.col.empty() && csr.rowPtr[r + 1] > csr.rowPtr[r] &&
            csr.col.back() == c &&
            csr.rowPtr[static_cast<size_t>(r) + 1] == csr.col.size()) {
            // Duplicate (same row and col as the previous kept entry
            // of this row): sum, per the MatrixMarket convention.
            csr.val.back() += m.vals[k];
            continue;
        }
        csr.col.push_back(c);
        csr.val.push_back(m.vals[k]);
        csr.rowPtr[static_cast<size_t>(r) + 1] = csr.col.size();
    }
    // rowPtr[r+1] currently holds the end offset for non-empty rows
    // only; propagate so every row has a valid [begin, end) range.
    for (size_t r = 1; r < csr.rowPtr.size(); r++)
        csr.rowPtr[r] = std::max(csr.rowPtr[r], csr.rowPtr[r - 1]);
    return csr;
}

// ----------------------------------------------------------------------
// Synthetic generators
// ----------------------------------------------------------------------

namespace {

CsrMatrix
fromRows(uint32_t n, std::vector<std::vector<uint32_t>> rowCols,
         Rng &rng)
{
    CsrMatrix csr;
    csr.rows = n;
    csr.cols = n;
    csr.rowPtr.assign(static_cast<size_t>(n) + 1, 0);
    for (uint32_t r = 0; r < n; r++) {
        auto &cols = rowCols[r];
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (uint32_t c : cols) {
            csr.col.push_back(c);
            csr.val.push_back(rng.uniformf(0.1f, 1.0f));
        }
        csr.rowPtr[static_cast<size_t>(r) + 1] = csr.col.size();
    }
    return csr;
}

} // namespace

CsrMatrix
mtxGenBanded(uint32_t n, uint32_t halfBand, uint64_t seed)
{
    Rng rng(seed ^ 0xba4dull);
    std::vector<std::vector<uint32_t>> rows(n);
    for (uint32_t r = 0; r < n; r++) {
        int64_t lo = std::max<int64_t>(0,
            static_cast<int64_t>(r) - halfBand);
        int64_t hi = std::min<int64_t>(n - 1,
            static_cast<int64_t>(r) + halfBand);
        for (int64_t c = lo; c <= hi; c++) {
            // The diagonal is always present; off-band taps are mostly
            // present so band rows have slightly varying lengths.
            if (c == r || rng.chance(0.9))
                rows[r].push_back(static_cast<uint32_t>(c));
        }
    }
    return fromRows(n, std::move(rows), rng);
}

CsrMatrix
mtxGenUniform(uint32_t n, uint32_t avgDeg, uint64_t seed)
{
    Rng rng(seed ^ 0x41f0ull);
    std::vector<std::vector<uint32_t>> rows(n);
    for (uint32_t r = 0; r < n; r++) {
        auto deg = static_cast<uint32_t>(rng.range(
            std::max<int64_t>(1, avgDeg / 2), avgDeg + avgDeg / 2));
        for (uint32_t k = 0; k < deg; k++)
            rows[r].push_back(static_cast<uint32_t>(rng.below(n)));
    }
    return fromRows(n, std::move(rows), rng);
}

CsrMatrix
mtxGenPowerLaw(uint32_t n, uint32_t avgDeg, double alpha, uint64_t seed)
{
    Rng rng(seed ^ 0xf01eull);
    const auto maxDeg = std::min<uint32_t>(n, 16 * avgDeg);
    std::vector<std::vector<uint32_t>> rows(n);
    for (uint32_t r = 0; r < n; r++) {
        // Heavy-tailed degree: most rows are short, a few are very
        // long (the cross-lane-fallback stress case).
        double u = std::max(rng.uniform(), 1e-9);
        double d = 0.5 * avgDeg * std::pow(u, -1.0 / alpha);
        auto deg = static_cast<uint32_t>(
            std::clamp<double>(d, 1.0, maxDeg));
        for (uint32_t k = 0; k < deg; k++) {
            // Columns skewed toward low indices (hub columns).
            double cu = rng.uniform();
            auto c = static_cast<uint32_t>(
                std::min<double>(n - 1.0, n * cu * cu));
            rows[r].push_back(c);
        }
    }
    return fromRows(n, std::move(rows), rng);
}

} // namespace isrf
