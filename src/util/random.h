/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used throughout the simulator.
 *
 * We avoid std::mt19937 in hot simulation paths and, more importantly,
 * want identical sequences across platforms so benchmark tables are
 * reproducible bit-for-bit.
 */
#ifndef ISRF_UTIL_RANDOM_H
#define ISRF_UTIL_RANDOM_H

#include <cstdint>

#include "util/snapshot.h"

namespace isrf {

/** Deterministic xoshiro256** PRNG with convenience helpers. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Simple modulo; bias is irrelevant at simulation scales.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Uniform float in [lo, hi). */
    float
    uniformf(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** Serialize the full generator state (util/snapshot.h). */
    void
    saveState(SnapshotWriter &w) const
    {
        for (uint64_t word : state_)
            w.u64(word);
    }

    bool
    loadState(SnapshotReader &r)
    {
        for (auto &word : state_)
            if (!r.u64(word))
                return false;
        return true;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[4];
};

} // namespace isrf

#endif // ISRF_UTIL_RANDOM_H
