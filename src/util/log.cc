#include "util/log.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace isrf {

namespace {

LogLevel gLevel = LogLevel::Warn;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
      case LogLevel::Trace: return "trace";
      default: return "log";
    }
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) > static_cast<int>(gLevel))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace isrf
