/**
 * @file
 * Statistics primitives: named scalar counters, running averages, and
 * histogram-style distributions, grouped per component.
 *
 * Every simulated component owns a StatGroup; the machine aggregates
 * groups into a report at the end of a run. The design is a small,
 * dependency-free cousin of gem5's stats package.
 */
#ifndef ISRF_UTIL_STATS_H
#define ISRF_UTIL_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/snapshot.h"

namespace isrf {

/** A monotonically increasing named counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(uint64_t n = 1) { value_ += n; }
    /** Overwrite with an externally maintained (monotonic) count. */
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Running mean/min/max over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_++;
        if (count_ == 1 || v < min_) min_ = v;
        if (count_ == 1 || v > max_) max_ = v;
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    void
    saveState(SnapshotWriter &w) const
    {
        w.f64(sum_);
        w.u64(count_);
        w.f64(min_);
        w.f64(max_);
    }

    bool
    loadState(SnapshotReader &r)
    {
        return r.f64(sum_) && r.u64(count_) && r.f64(min_) &&
               r.f64(max_);
    }

  private:
    double sum_ = 0;
    uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram(double lo = 0, double hi = 1, size_t buckets = 10);

    void sample(double v, uint64_t weight = 1);
    void reset();

    uint64_t totalSamples() const { return total_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    double bucketLow(size_t i) const;
    double bucketHigh(size_t i) const;
    double mean() const { return total_ ? weightedSum_ / total_ : 0.0; }

    /** Bucket contents only; geometry (lo/hi/count) is construction
     *  state and must already match. */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    friend class StatGroup;  // serializes geometry alongside contents

    double lo_;
    double hi_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    double weightedSum_ = 0;
};

/**
 * A named collection of statistics owned by one component.
 *
 * Stats are registered by name on first access; formatRows() renders
 * them as "group.name value" lines for reports.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Get-or-create a named counter. */
    Counter &counter(const std::string &name);
    /** Get-or-create a named running average. */
    Average &average(const std::string &name);
    /**
     * Get-or-create a named histogram. The range/bucket parameters
     * apply on first creation only; later calls return the existing
     * histogram unchanged.
     */
    Histogram &histogram(const std::string &name, double lo = 0,
                         double hi = 1, size_t buckets = 10);

    /** Read a counter value; 0 if never created. */
    uint64_t counterValue(const std::string &name) const;
    /** True if a counter of this name exists. */
    bool hasCounter(const std::string &name) const;
    /** True if a histogram of this name exists. */
    bool hasHistogram(const std::string &name) const;
    /** Look up a histogram; nullptr if never created. */
    const Histogram *findHistogram(const std::string &name) const;

    void resetAll();

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Render all stats as "group.stat = value" lines. */
    std::vector<std::string> formatRows() const;

    /**
     * Serialize every named stat. loadState() restores in place:
     * existing entries are overwritten (map nodes are never erased,
     * so components' cached Counter/Histogram pointers stay valid),
     * snapshot-only entries are created, and entries absent from the
     * snapshot are reset to zero.
     */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace isrf

#endif // ISRF_UTIL_STATS_H
