/**
 * @file
 * Minimal JSON emission and validation.
 *
 * JsonWriter is a streaming writer with automatic comma placement and
 * string escaping — enough to export machine reports, benchmark
 * results, and stat samples without a third-party dependency.
 * jsonValid() is a strict structural validator used by tests and tools
 * to check exported files without parsing them into a DOM.
 */
#ifndef ISRF_UTIL_JSON_H
#define ISRF_UTIL_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace isrf {

/** Streaming JSON writer (object/array nesting, escaping, commas). */
class JsonWriter
{
  public:
    JsonWriter() = default;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }
    JsonWriter &value(bool v);

    /** Splice pre-serialized JSON in value position (caller-validated). */
    JsonWriter &raw(const std::string &json);

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** The document so far. */
    std::string str() const { return out_.str(); }

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    void preValue();

    std::ostringstream out_;
    /** Nesting stack: for each level, whether a separator is needed. */
    std::vector<bool> needComma_;
    bool pendingKey_ = false;
};

/**
 * Strict structural JSON validity check (RFC 8259 grammar, no DOM).
 * @return true iff `text` is exactly one valid JSON value.
 */
bool jsonValid(const std::string &text);

/** Write a string to a file. @return false on I/O error. */
bool writeTextFile(const std::string &path, const std::string &content);

} // namespace isrf

#endif // ISRF_UTIL_JSON_H
