/**
 * @file
 * Logging and error-reporting helpers for the simulator.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, impossible parameters), panic() is for internal
 * invariant violations (simulator bugs). Both terminate; fatal exits
 * cleanly while panic aborts.
 */
#ifndef ISRF_UTIL_LOG_H
#define ISRF_UTIL_LOG_H

#include <cstdarg>
#include <string>

namespace isrf {

/** Verbosity levels for the simulator-wide logger. */
enum class LogLevel {
    Quiet = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Set the global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/** printf-style message at a given level; filtered by the threshold. */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** User-facing error: print message and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violation: print message and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define ISRF_WARN(...) ::isrf::logMessage(::isrf::LogLevel::Warn, __VA_ARGS__)
#define ISRF_INFO(...) ::isrf::logMessage(::isrf::LogLevel::Info, __VA_ARGS__)
#define ISRF_DEBUG(...) ::isrf::logMessage(::isrf::LogLevel::Debug, __VA_ARGS__)
#define ISRF_TRACE(...) ::isrf::logMessage(::isrf::LogLevel::Trace, __VA_ARGS__)

} // namespace isrf

#endif // ISRF_UTIL_LOG_H
