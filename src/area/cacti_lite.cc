#include "area/cacti_lite.h"

#include "util/log.h"

namespace isrf {

double
AreaBreakdown::total() const
{
    double t = 0;
    for (const auto &c : components)
        t += c.um2;
    return t;
}

void
AreaBreakdown::add(const std::string &name, double um2)
{
    components.push_back({name, um2});
}

SrfAreaModel::SrfAreaModel(const SrfGeometry &geom,
                           const ProcessParams &proc)
    : geom_(geom), proc_(proc)
{
}

namespace {

/** Columns per sub-array: one 32-bit word per mux output times m. */
constexpr uint32_t kBitsPerWord = 32;

} // namespace

void
SrfAreaModel::addBankCore(AreaBreakdown &b, bool perSubArraySense) const
{
    const uint32_t banks = geom_.lanes;
    const uint32_t s = geom_.subArrays;
    const uint64_t bitsPerBank =
        static_cast<uint64_t>(geom_.laneWords) * kBitsPerWord;
    const uint32_t colsPerSubArray = geom_.seqWidth * kBitsPerWord * 2;
    const uint32_t rowsPerSubArray = static_cast<uint32_t>(
        bitsPerBank / s / colsPerSubArray);

    double cells = proc_.f2ToUm2(
        static_cast<double>(bitsPerBank) * banks * proc_.cellAreaF2);
    b.add("data cells", cells);

    // Sense amps / write drivers: one set per sub-array column group.
    double sense = proc_.f2ToUm2(static_cast<double>(colsPerSubArray) *
        proc_.senseAmpPerColF2 * s * banks);
    b.add("sense amps + write drivers", sense);

    // Base 2:1 column mux (256-bit row -> 128-bit access, Figure 6).
    double mux = proc_.f2ToUm2(static_cast<double>(colsPerSubArray) *
        proc_.muxStagePerColF2 * s * banks);
    b.add("column mux (2:1, sequential)", mux);

    // Local wordline drivers in every bank.
    double rowsPerBank = static_cast<double>(rowsPerSubArray) * s;
    double lwl = proc_.f2ToUm2(rowsPerBank * banks *
        proc_.rowDecodePerRowF2 / 3.0);
    b.add("local wordline drivers", lwl);

    // Global bitlines / data routing per bank.
    double route = proc_.f2ToUm2(
        static_cast<double>(geom_.seqWidth) * kBitsPerWord *
        proc_.wirePitchF * 2.0 * 1200.0 * banks);
    b.add("global bitlines + data routing", route);

    (void)perSubArraySense;
}

AreaBreakdown
SrfAreaModel::sequential() const
{
    AreaBreakdown b;
    b.name = "Sequential SRF";
    addBankCore(b, false);

    const uint32_t s = geom_.subArrays;
    const uint64_t bitsPerBank =
        static_cast<uint64_t>(geom_.laneWords) * kBitsPerWord;
    const uint32_t colsPerSubArray = geom_.seqWidth * kBitsPerWord * 2;
    double rowsPerBank = static_cast<double>(bitsPerBank) /
        colsPerSubArray;
    (void)s;

    // One shared row decoder for all banks (Figure 6).
    double dec = proc_.f2ToUm2(rowsPerBank * proc_.rowDecodePerRowF2 +
                               proc_.predecodeF2);
    b.add("shared row decoder", dec);
    return b;
}

AreaBreakdown
SrfAreaModel::isrf1() const
{
    AreaBreakdown b;
    b.name = "ISRF1";
    addBankCore(b, false);

    const uint32_t banks = geom_.lanes;
    const uint64_t bitsPerBank =
        static_cast<uint64_t>(geom_.laneWords) * kBitsPerWord;
    const uint32_t colsPerSubArray = geom_.seqWidth * kBitsPerWord * 2;
    double rowsPerBank = static_cast<double>(bitsPerBank) /
        colsPerSubArray;

    // Dedicated row decoder + predecode per bank (§4.2).
    double dec = proc_.f2ToUm2(
        (rowsPerBank * proc_.rowDecodePerRowF2 + proc_.predecodeF2) *
        banks);
    b.add("per-bank row decoders", dec);

    // Per-bank address distribution from the clusters.
    double abus = proc_.f2ToUm2(16.0 * proc_.wirePitchF * 2.0 * 2600.0 *
                                banks);
    b.add("per-bank address busses", abus);

    // Word-granularity output mux (one word from the 128-bit access).
    double omux = proc_.f2ToUm2(
        static_cast<double>(geom_.seqWidth) * kBitsPerWord *
        proc_.muxStagePerColF2 * banks);
    b.add("word-select output mux", omux);
    return b;
}

AreaBreakdown
SrfAreaModel::isrf4() const
{
    AreaBreakdown b;
    b.name = "ISRF4";
    addBankCore(b, false);

    const uint32_t banks = geom_.lanes;
    const uint32_t s = geom_.subArrays;
    const uint64_t bitsPerBank =
        static_cast<uint64_t>(geom_.laneWords) * kBitsPerWord;
    const uint32_t colsPerSubArray = geom_.seqWidth * kBitsPerWord * 2;
    const double rowsPerSubArray = static_cast<double>(bitsPerBank) / s /
        colsPerSubArray;

    // Independent predecode + row decode at every sub-array (Figure 7).
    double dec = proc_.f2ToUm2(
        (rowsPerSubArray * proc_.rowDecodePerRowF2 + proc_.predecodeF2) *
        s * banks);
    b.add("per-sub-array row decoders", dec);

    // Additional 8:1 column mux per sub-array (3 stages minus the base
    // 2:1 stage already counted in the core).
    double mux = proc_.f2ToUm2(static_cast<double>(colsPerSubArray) *
        proc_.muxStagePerColF2 * 2.0 * s * banks);
    b.add("8:1 column muxes", mux);

    // Address busses now run to every sub-array.
    double abus = proc_.f2ToUm2(16.0 * proc_.wirePitchF * 2.0 * 2600.0 *
                                s * banks / 2.0);
    b.add("per-sub-array address busses", abus);

    return b;
}

AreaBreakdown
SrfAreaModel::crossLane() const
{
    AreaBreakdown b = isrf4();
    b.name = "ISRF4 + cross-lane";

    const uint32_t n = geom_.lanes;
    // Dedicated index (address) network: n x n crossbar of ~16-bit
    // indices spanning the lane array (§4.5). Indices are narrow and
    // the crossbar is wiring-dominated, so it is far cheaper than the
    // 32-bit data network.
    double idxNet = proc_.f2ToUm2(static_cast<double>(n) * n * 16.0 *
        proc_.wirePitchF * proc_.wirePitchF * 63.0);
    b.add("SRF address network", idxNet);

    // Extra data-network ports on the SRF side of each bank.
    double ports = proc_.f2ToUm2(static_cast<double>(n) *
        geom_.netPortsPerBank * kBitsPerWord * proc_.wirePitchF * 2.0 *
        440.0);
    b.add("SRF data-network ports", ports);
    return b;
}

AreaBreakdown
SrfAreaModel::crossLaneSparse() const
{
    AreaBreakdown b = isrf4();
    b.name = "ISRF4 + cross-lane (ring)";

    const uint32_t n = geom_.lanes;
    // Ring: 2n unidirectional links instead of n^2 crossbar wiring;
    // per-hop buffering replaces the central switch.
    double idxNet = proc_.f2ToUm2(2.0 * n * 16.0 * proc_.wirePitchF *
        proc_.wirePitchF * 63.0 * 2.2);
    b.add("SRF address ring", idxNet);
    double ports = proc_.f2ToUm2(static_cast<double>(n) *
        geom_.netPortsPerBank * kBitsPerWord * proc_.wirePitchF * 2.0 *
        440.0 * 0.6);
    b.add("SRF data-ring ports", ports);
    return b;
}

AreaBreakdown
SrfAreaModel::cache(uint32_t lineWords, uint32_t ways) const
{
    AreaBreakdown b;
    b.name = "Vector cache (equal capacity)";
    // Data array: same capacity as the SRF, same SRAM design.
    AreaBreakdown data = sequential();
    b.add("data array", data.total());

    const uint64_t totalWords = geom_.totalWords();
    const uint64_t lines = totalWords / lineWords;
    // ~18 tag bits + valid + dirty + 2 LRU bits per line.
    const double tagBitsPerLine = 18 + 2 + 2;
    double tags = proc_.f2ToUm2(static_cast<double>(lines) *
        tagBitsPerLine * proc_.cellAreaF2 * 1.4);
    b.add("tag array", tags);

    double cmp = proc_.f2ToUm2(static_cast<double>(lines) / ways * ways *
        18.0 * 130.0);
    b.add("comparators + way select", cmp);

    // Crossbars between the lanes and the cache banks in both
    // directions, plus the DRAM fill path.
    double xbar = proc_.f2ToUm2(
        static_cast<double>(geom_.lanes) * 4.0 * kBitsPerWord *
        proc_.wirePitchF * proc_.wirePitchF * 1265.0);
    b.add("bank crossbar + fill path", xbar);

    // Non-blocking miss handling: MSHRs, fill/writeback buffers.
    double mshr = proc_.f2ToUm2(5.3e7);
    b.add("miss status + fill buffers", mshr);
    return b;
}

double
SrfAreaModel::overheadOver(const AreaBreakdown &variant) const
{
    double seq = sequential().total();
    if (seq <= 0)
        panic("SrfAreaModel: zero sequential area");
    return variant.total() / seq - 1.0;
}

double
SrfAreaModel::dieFraction(double srfOverhead, double srfDieShare) const
{
    return srfOverhead * srfDieShare;
}

} // namespace isrf
