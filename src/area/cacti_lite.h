/**
 * @file
 * CACTI-lite: a from-scratch SRAM area model for the SRF variants.
 *
 * The paper estimated area with modified CACTI 3.0 models plus custom
 * floorplans (§4.6) and reported, for a 128 KB SRF at 0.13 µm:
 *   - ISRF1 (per-bank row decoders):                +11% over sequential
 *   - ISRF4 (+ per-sub-array decode, 8:1 muxes):    +18%
 *   - cross-lane (+ SRF address network):           +22%
 *   - vector cache of equal capacity:               +100%..150%
 * and 1.5%-3% of total die area based on Imagine statistics [13].
 *
 * We reconstruct these numbers from first-principles component
 * estimates: cell area, decoders, wordline drivers, sense amplifiers,
 * column multiplexers, address busses, and network wiring, with
 * constants calibrated to 0.13 µm (documented per component).
 */
#ifndef ISRF_AREA_CACTI_LITE_H
#define ISRF_AREA_CACTI_LITE_H

#include <string>
#include <vector>

#include "srf/srf_types.h"

namespace isrf {

/** Process + layout constants (defaults: 0.13 µm generic process). */
struct ProcessParams
{
    double featureUm = 0.13;
    /** 6T SRAM cell in F^2 (typical 120-150 for this era). */
    double cellAreaF2 = 140.0;
    /** Row decoder+driver area per row, in F^2. */
    double rowDecodePerRowF2 = 3.6e3;
    /** Predecoder block per decoder instance, F^2. */
    double predecodeF2 = 2.2e5;
    /** Sense amp + write driver per column, F^2. */
    double senseAmpPerColF2 = 1.3e3;
    /** One 2:1 mux stage per column, F^2 (an 8:1 mux = 3 stages). */
    double muxStagePerColF2 = 3.2e2;
    /** Wire pitch (per track), F. */
    double wirePitchF = 8.0;

    double cellAreaUm2() const { return cellAreaF2 * featureUm * featureUm; }
    double f2ToUm2(double f2) const { return f2 * featureUm * featureUm; }
};

/** One named area component of a floorplan. */
struct AreaComponent
{
    std::string name;
    double um2;
};

/** A floorplan: named components summing to a total. */
struct AreaBreakdown
{
    std::string name;
    std::vector<AreaComponent> components;

    double total() const;
    double mm2() const { return total() * 1e-6; }
    void add(const std::string &name, double um2);
};

/** Area model for all SRF variants + the vector cache. */
class SrfAreaModel
{
  public:
    explicit SrfAreaModel(const SrfGeometry &geom = {},
                          const ProcessParams &proc = {});

    /** Sequential-only SRF (Figure 6 organization). */
    AreaBreakdown sequential() const;
    /** ISRF1: dedicated per-bank row decoders (§4.2). */
    AreaBreakdown isrf1() const;
    /** ISRF4: + per-sub-array predecode/decode + 8:1 muxes (Figure 7). */
    AreaBreakdown isrf4() const;
    /** ISRF4 + cross-lane address network + extra data-net ports. */
    AreaBreakdown crossLane() const;
    /**
     * ISRF4 + cross-lane indexing over *sparse* (ring) interconnects
     * (§7 future work): the n^2 crossbar wiring collapses to 2n ring
     * links for both the address and data networks.
     */
    AreaBreakdown crossLaneSparse() const;
    /** Equal-capacity vector cache (tags + data + crossbar). */
    AreaBreakdown cache(uint32_t lineWords = 2, uint32_t ways = 4) const;

    /** Overhead of a variant relative to the sequential SRF. */
    double overheadOver(const AreaBreakdown &variant) const;

    /**
     * Die-area fraction of an SRF overhead given the SRF's share of the
     * die (Imagine [13]: SRF is ~13.6% of die, so 11-22% SRF overhead
     * is 1.5-3% of die).
     */
    double dieFraction(double srfOverhead,
                       double srfDieShare = 0.136) const;

    const SrfGeometry &geometry() const { return geom_; }
    const ProcessParams &process() const { return proc_; }

  private:
    /** Core of one bank: cells + sense amps + local drivers. */
    void addBankCore(AreaBreakdown &b, bool perSubArraySense) const;

    SrfGeometry geom_;
    ProcessParams proc_;
};

} // namespace isrf

#endif // ISRF_AREA_CACTI_LITE_H
