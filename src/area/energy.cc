#include "area/energy.h"

#include "util/log.h"

namespace isrf {

std::string
EnergyEstimate::summary() const
{
    return strprintf(
        "total=%.1f nJ (seqSRF=%.1f idxSRF=%.1f cache=%.1f dram=%.1f)",
        totalNj(), seqSrfNj, idxSrfNj, cacheNj, dramNj);
}

EnergyEstimate
EnergyModel::estimate(const EnergyCounts &counts) const
{
    EnergyEstimate e;
    e.seqSrfNj = static_cast<double>(counts.seqSrfWords) *
        params_.seqSrfPerWordPj * 1e-3;
    e.idxSrfNj = static_cast<double>(counts.idxSrfWords) *
        params_.idxSrfPerWordPj * 1e-3;
    e.cacheNj = static_cast<double>(counts.cacheWords) *
        params_.cachePerWordPj * 1e-3;
    e.dramNj = static_cast<double>(counts.dramWords) *
        params_.dramPerWordPj * 1e-3;
    return e;
}

} // namespace isrf
