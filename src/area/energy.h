/**
 * @file
 * Access-energy model (§4.4): indexed single-word SRF accesses cost
 * ~4x the per-word energy of sequential accesses due to the extra
 * column multiplexing, landing at ~0.1 nJ per access in 0.13 µm —
 * still an order of magnitude below the ~5 nJ of an off-chip DRAM
 * access.
 */
#ifndef ISRF_AREA_ENERGY_H
#define ISRF_AREA_ENERGY_H

#include <cstdint>
#include <string>

namespace isrf {

/** Per-access energies in picojoules (0.13 µm calibration). */
struct EnergyParams
{
    double seqSrfPerWordPj = 25.0;    ///< sequential SRF, per word
    double idxSrfPerWordPj = 100.0;   ///< indexed SRF word (~4x seq)
    double cachePerWordPj = 55.0;     ///< on-chip cache access
    double dramPerWordPj = 5000.0;    ///< off-chip DRAM access (~5 nJ)
};

/** Aggregated access counts for an energy estimate. */
struct EnergyCounts
{
    uint64_t seqSrfWords = 0;
    uint64_t idxSrfWords = 0;
    uint64_t cacheWords = 0;
    uint64_t dramWords = 0;
};

/** Energy estimate with component breakdown. */
struct EnergyEstimate
{
    double seqSrfNj = 0;
    double idxSrfNj = 0;
    double cacheNj = 0;
    double dramNj = 0;

    double totalNj() const { return seqSrfNj + idxSrfNj + cacheNj + dramNj; }
    std::string summary() const;
};

/** Computes energy estimates from access counts. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {})
        : params_(params)
    {
    }

    EnergyEstimate estimate(const EnergyCounts &counts) const;

    /** Ratio of indexed to sequential per-word energy (§4.4: ~4x). */
    double indexedToSeqRatio() const
    {
        return params_.idxSrfPerWordPj / params_.seqSrfPerWordPj;
    }

    /** Ratio of DRAM to indexed-SRF per-word energy (~50x). */
    double dramToIndexedRatio() const
    {
        return params_.dramPerWordPj / params_.idxSrfPerWordPj;
    }

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace isrf

#endif // ISRF_AREA_ENERGY_H
