/**
 * @file
 * Cycle-accurate event tracer for the simulator.
 *
 * Components register named *channels* ("srf", "mem", "dram", ...) and
 * emit timestamped events into a bounded ring buffer: Begin/End spans,
 * Instant markers, and Counter samples. Tracing is runtime-enabled —
 * via the ISRF_TRACE environment variable or Tracer::enableChannels() —
 * and costs a single predictable branch per call site when off, so the
 * instrumentation can live permanently in hot paths.
 *
 * The buffer exports as Chrome trace-event JSON (loadable in Perfetto
 * or chrome://tracing; one "thread" per channel) and as CSV. The tail
 * of the ring can also be dumped on a deadlock panic so hung runs are
 * diagnosable (see Engine::runUntil).
 *
 * ISRF_TRACE syntax:
 *   ISRF_TRACE=all           enable every channel
 *   ISRF_TRACE=1             same as "all"
 *   ISRF_TRACE=srf,mem,dram  enable only the listed channels
 *   ISRF_TRACE=0 / unset     tracing off
 *
 * Event names must be string literals (or otherwise outlive the
 * tracer): the ring stores `const char *` to stay allocation-free.
 */
#ifndef ISRF_SIM_TRACE_H
#define ISRF_SIM_TRACE_H

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "sim/ticked.h"

namespace isrf {

/** Kind of a trace event (maps onto Chrome trace-event phases). */
enum class TraceEventType : uint8_t {
    Begin,    ///< opens a span on its channel ("ph":"B")
    End,      ///< closes the innermost span ("ph":"E")
    Instant,  ///< a point-in-time marker ("ph":"i")
    Counter,  ///< a named value sample ("ph":"C")
};

/** One entry in the trace ring buffer. */
struct TraceEvent
{
    Cycle ts = 0;           ///< cycle the event happened
    uint16_t channel = 0;   ///< channel id from Tracer::channel()
    TraceEventType type = TraceEventType::Instant;
    const char *name = "";  ///< static string; not owned
    uint64_t arg = 0;       ///< payload: counter value, slot id, ...
};

/**
 * Event tracer. Each Machine owns one, so two machines in the same
 * process never observe each other's events; within one machine the
 * simulation is single-threaded, so recording needs no locking.
 *
 * A freshly constructed tracer is disabled, reads no environment, and
 * allocates no ring until a channel is enabled or setCapacity() is
 * called. The process-global instance() shim survives for the CLI
 * path: bench binaries enable it, per-machine traces are merged into
 * it (mergeFrom) at harvest time, and it is what --trace exports.
 *
 * Channel ids are stable for the tracer's lifetime; clear() drops
 * buffered events but keeps channel registrations and enablement.
 */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * The global tracer (CLI shim). First call parses ISRF_TRACE and
     * ISRF_TRACE_CAPACITY with validated parsing (bad values warn and
     * fall back to defaults). Construction is thread-safe; concurrent
     * mutation is only safe through mergeFrom().
     */
    static Tracer &instance();

    /** Fast-path check for call sites: any channel enabled? */
    bool on() const { return anyEnabled_; }

    /** Get-or-create a channel id for a component name. */
    uint16_t channel(const std::string &name);

    /** Channel name for an id (empty if unknown). */
    const std::string &channelName(uint16_t id) const;

    size_t channelCount() const { return channels_.size(); }

    /**
     * Enable channels from a spec: "all"/"1" for everything, "0"/"" for
     * nothing, else a comma-separated channel-name list. Names not yet
     * registered are remembered and applied on registration.
     */
    void enableChannels(const std::string &spec);

    /** Disable all channels (events stop being recorded). */
    void disable();

    bool channelEnabled(uint16_t id) const;

    /** Ring capacity in events. Clears the buffer. */
    void setCapacity(size_t events);
    size_t capacity() const { return ring_.size(); }

    /** Default ring capacity, used when none was configured. */
    static constexpr size_t kDefaultCapacity = 1 << 16;

    /**
     * Append another tracer's buffered events to this one, mapping
     * channels by name (registering them here as needed) and
     * re-interning event names so they outlive the source. Events are
     * appended regardless of this tracer's channel enablement — the
     * source already filtered. Thread-safe against concurrent
     * mergeFrom() calls on the same destination (the CLI shim receives
     * merges from parallel sweep workers); not against concurrent
     * record()/export on it.
     */
    void mergeFrom(const Tracer &other);

    /** Drop all buffered events (registrations survive). */
    void clear();

    /**
     * Intern a dynamic string for use as an event name: returns a
     * pointer that stays valid for the process lifetime. Use for names
     * built at runtime (e.g. kernel names) — event names are stored as
     * `const char *` and must outlive the tracer.
     */
    const char *intern(const std::string &s);

    // ------------------------------------------------------------------
    // Recording (call sites should guard with tracer.on())
    // ------------------------------------------------------------------

    void record(uint16_t ch, TraceEventType type, const char *name,
                Cycle ts, uint64_t arg = 0);

    void
    begin(uint16_t ch, const char *name, Cycle ts, uint64_t arg = 0)
    {
        record(ch, TraceEventType::Begin, name, ts, arg);
    }
    void
    end(uint16_t ch, const char *name, Cycle ts, uint64_t arg = 0)
    {
        record(ch, TraceEventType::End, name, ts, arg);
    }
    void
    instant(uint16_t ch, const char *name, Cycle ts, uint64_t arg = 0)
    {
        record(ch, TraceEventType::Instant, name, ts, arg);
    }
    void
    counter(uint16_t ch, const char *name, Cycle ts, uint64_t value)
    {
        record(ch, TraceEventType::Counter, name, ts, value);
    }

    // ------------------------------------------------------------------
    // Inspection / export
    // ------------------------------------------------------------------

    /** Events currently buffered (<= capacity). */
    size_t size() const { return count_; }

    /** Total events recorded, including ones the ring overwrote. */
    uint64_t totalRecorded() const { return totalRecorded_; }

    /** Events lost to ring wraparound. */
    uint64_t dropped() const { return totalRecorded_ - count_; }

    /** The most recent n events, oldest first. */
    std::vector<TraceEvent> lastEvents(size_t n) const;

    /** All buffered events, oldest first. */
    std::vector<TraceEvent> events() const { return lastEvents(count_); }

    /** Render the buffer as Chrome trace-event JSON. */
    std::string chromeJson() const;

    /** Render the buffer as "cycle,channel,type,name,arg" CSV. */
    std::string csv() const;

    /** Write chromeJson() to a file. @return false on I/O error. */
    bool writeChromeJson(const std::string &path) const;

    /** Write csv() to a file. @return false on I/O error. */
    bool writeCsv(const std::string &path) const;

    /**
     * Dump the last n events to a stream (deadlock diagnostics).
     * `label` tags the dump with the owning machine/config name so a
     * multi-machine process's dumps are attributable.
     */
    void dumpTail(std::FILE *out, size_t n,
                  const char *label = nullptr) const;

  private:
    void refreshEnabledFlag();
    void append(const TraceEvent &e);

    struct Channel
    {
        std::string name;
        bool enabled = false;
    };

    bool anyEnabled_ = false;  ///< any channel enabled (fast-path flag)

    std::vector<Channel> channels_;
    std::vector<std::string> pendingEnables_;  ///< names enabled early
    bool enableAll_ = false;
    std::set<std::string> interned_;  ///< node-stable name storage

    std::vector<TraceEvent> ring_;
    size_t head_ = 0;   ///< next write position
    size_t count_ = 0;  ///< valid events in the ring
    uint64_t totalRecorded_ = 0;
};

/**
 * RAII Begin/End span helper:
 *   { TraceScope s(tracer, ch, "kernel", now); ... s.close(later); }
 * If close() is never called the span ends at the construction cycle.
 */
class TraceScope
{
  public:
    TraceScope(Tracer &t, uint16_t ch, const char *name, Cycle start,
               uint64_t arg = 0)
        : t_(t), ch_(ch), name_(name), last_(start)
    {
        if (t_.on())
            t_.begin(ch_, name_, start, arg);
    }
    void
    close(Cycle end)
    {
        last_ = end;
        closed_ = true;
        if (t_.on())
            t_.end(ch_, name_, end);
    }
    ~TraceScope()
    {
        if (!closed_ && t_.on())
            t_.end(ch_, name_, last_);
    }

  private:
    Tracer &t_;
    uint16_t ch_;
    const char *name_;
    Cycle last_;
    bool closed_ = false;
};

} // namespace isrf

#endif // ISRF_SIM_TRACE_H
