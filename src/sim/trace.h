/**
 * @file
 * Cycle-accurate event tracer for the simulator.
 *
 * Components register named *channels* ("srf", "mem", "dram", ...) and
 * emit timestamped events into a bounded ring buffer: Begin/End spans,
 * Instant markers, and Counter samples. Tracing is runtime-enabled —
 * via the ISRF_TRACE environment variable or Tracer::enableChannels() —
 * and costs a single predictable branch per call site when off, so the
 * instrumentation can live permanently in hot paths.
 *
 * The buffer exports as Chrome trace-event JSON (loadable in Perfetto
 * or chrome://tracing; one "thread" per channel) and as CSV. The tail
 * of the ring can also be dumped on a deadlock panic so hung runs are
 * diagnosable (see Engine::runUntil).
 *
 * ISRF_TRACE syntax:
 *   ISRF_TRACE=all           enable every channel
 *   ISRF_TRACE=1             same as "all"
 *   ISRF_TRACE=srf,mem,dram  enable only the listed channels
 *   ISRF_TRACE=0 / unset     tracing off
 *
 * Event names must be string literals (or otherwise outlive the
 * tracer): the ring stores `const char *` to stay allocation-free.
 */
#ifndef ISRF_SIM_TRACE_H
#define ISRF_SIM_TRACE_H

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "sim/ticked.h"

namespace isrf {

/** Kind of a trace event (maps onto Chrome trace-event phases). */
enum class TraceEventType : uint8_t {
    Begin,    ///< opens a span on its channel ("ph":"B")
    End,      ///< closes the innermost span ("ph":"E")
    Instant,  ///< a point-in-time marker ("ph":"i")
    Counter,  ///< a named value sample ("ph":"C")
};

/** One entry in the trace ring buffer. */
struct TraceEvent
{
    Cycle ts = 0;           ///< cycle the event happened
    uint16_t channel = 0;   ///< channel id from Tracer::channel()
    TraceEventType type = TraceEventType::Instant;
    const char *name = "";  ///< static string; not owned
    uint64_t arg = 0;       ///< payload: counter value, slot id, ...
};

/**
 * Process-wide event tracer (the simulator is single-threaded).
 *
 * Channel ids are stable for the process lifetime; clear() drops
 * buffered events but keeps channel registrations and enablement.
 */
class Tracer
{
  public:
    /** The global tracer. First call parses ISRF_TRACE. */
    static Tracer &instance();

    /** Fast-path check for call sites: any tracing enabled at all? */
    static bool on() { return enabled_; }

    /** Get-or-create a channel id for a component name. */
    uint16_t channel(const std::string &name);

    /** Channel name for an id (empty if unknown). */
    const std::string &channelName(uint16_t id) const;

    size_t channelCount() const { return channels_.size(); }

    /**
     * Enable channels from a spec: "all"/"1" for everything, "0"/"" for
     * nothing, else a comma-separated channel-name list. Names not yet
     * registered are remembered and applied on registration.
     */
    void enableChannels(const std::string &spec);

    /** Disable all channels (events stop being recorded). */
    void disable();

    bool channelEnabled(uint16_t id) const;

    /** Ring capacity in events (default 1<<16). Clears the buffer. */
    void setCapacity(size_t events);
    size_t capacity() const { return ring_.size(); }

    /** Drop all buffered events (registrations survive). */
    void clear();

    /**
     * Intern a dynamic string for use as an event name: returns a
     * pointer that stays valid for the process lifetime. Use for names
     * built at runtime (e.g. kernel names) — event names are stored as
     * `const char *` and must outlive the tracer.
     */
    const char *intern(const std::string &s);

    // ------------------------------------------------------------------
    // Recording (call sites should guard with Tracer::on())
    // ------------------------------------------------------------------

    void record(uint16_t ch, TraceEventType type, const char *name,
                Cycle ts, uint64_t arg = 0);

    void
    begin(uint16_t ch, const char *name, Cycle ts, uint64_t arg = 0)
    {
        record(ch, TraceEventType::Begin, name, ts, arg);
    }
    void
    end(uint16_t ch, const char *name, Cycle ts, uint64_t arg = 0)
    {
        record(ch, TraceEventType::End, name, ts, arg);
    }
    void
    instant(uint16_t ch, const char *name, Cycle ts, uint64_t arg = 0)
    {
        record(ch, TraceEventType::Instant, name, ts, arg);
    }
    void
    counter(uint16_t ch, const char *name, Cycle ts, uint64_t value)
    {
        record(ch, TraceEventType::Counter, name, ts, value);
    }

    // ------------------------------------------------------------------
    // Inspection / export
    // ------------------------------------------------------------------

    /** Events currently buffered (<= capacity). */
    size_t size() const { return count_; }

    /** Total events recorded, including ones the ring overwrote. */
    uint64_t totalRecorded() const { return totalRecorded_; }

    /** Events lost to ring wraparound. */
    uint64_t dropped() const { return totalRecorded_ - count_; }

    /** The most recent n events, oldest first. */
    std::vector<TraceEvent> lastEvents(size_t n) const;

    /** All buffered events, oldest first. */
    std::vector<TraceEvent> events() const { return lastEvents(count_); }

    /** Render the buffer as Chrome trace-event JSON. */
    std::string chromeJson() const;

    /** Render the buffer as "cycle,channel,type,name,arg" CSV. */
    std::string csv() const;

    /** Write chromeJson() to a file. @return false on I/O error. */
    bool writeChromeJson(const std::string &path) const;

    /** Write csv() to a file. @return false on I/O error. */
    bool writeCsv(const std::string &path) const;

    /** Dump the last n events to a stream (deadlock diagnostics). */
    void dumpTail(std::FILE *out, size_t n) const;

  private:
    Tracer();

    void refreshEnabledFlag();

    struct Channel
    {
        std::string name;
        bool enabled = false;
    };

    static bool enabled_;  ///< any channel enabled (fast-path flag)

    std::vector<Channel> channels_;
    std::vector<std::string> pendingEnables_;  ///< names enabled early
    bool enableAll_ = false;
    std::set<std::string> interned_;  ///< node-stable name storage

    std::vector<TraceEvent> ring_;
    size_t head_ = 0;   ///< next write position
    size_t count_ = 0;  ///< valid events in the ring
    uint64_t totalRecorded_ = 0;
};

/**
 * RAII Begin/End span helper:
 *   { TraceScope s(ch, "kernel", now); ... s.close(later); }
 * If close() is never called the span ends at the construction cycle.
 */
class TraceScope
{
  public:
    TraceScope(uint16_t ch, const char *name, Cycle start, uint64_t arg = 0)
        : ch_(ch), name_(name), last_(start)
    {
        if (Tracer::on())
            Tracer::instance().begin(ch_, name_, start, arg);
    }
    void
    close(Cycle end)
    {
        last_ = end;
        closed_ = true;
        if (Tracer::on())
            Tracer::instance().end(ch_, name_, end);
    }
    ~TraceScope()
    {
        if (!closed_ && Tracer::on())
            Tracer::instance().end(ch_, name_, last_);
    }

  private:
    uint16_t ch_;
    const char *name_;
    Cycle last_;
    bool closed_ = false;
};

} // namespace isrf

#endif // ISRF_SIM_TRACE_H
