/**
 * @file
 * Synchronous tick engine driving all machine components.
 */
#ifndef ISRF_SIM_ENGINE_H
#define ISRF_SIM_ENGINE_H

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sim/ticked.h"

namespace isrf {

class Tracer;

/** How a runUntil() loop ended. */
enum class RunStatus : uint8_t {
    Done,       ///< the predicate was satisfied
    Limit,      ///< the cycle limit was hit (likely a model deadlock)
    Stalled,    ///< a progress watchdog tripped (see fault/watchdog.h)
    TimedOut,   ///< a CancelToken wall-clock deadline expired
    Cancelled,  ///< a CancelToken cancellation request was observed
    Failed,     ///< job-level only: the workload threw (never from Engine)
};

const char *runStatusName(RunStatus status);

/**
 * Inverse of runStatusName(). @return false (out untouched) when
 * `name` is not a known status.
 */
bool runStatusFromName(const std::string &name, RunStatus &out);

/**
 * Cooperative cancellation and wall-clock deadline, shared between a
 * controlling thread and a running simulation.
 *
 * The controller calls requestCancel() and/or arms a deadline; the
 * engine polls the token at cycle-boundary check points and exits its
 * run loop with RunStatus::Cancelled / RunStatus::TimedOut. There is
 * no preemption and no extra thread: a simulation stops only at a
 * consistent machine state, never mid-cycle, and a "hung" job unwinds
 * by returning through the normal call chain.
 *
 * Tokens may be chained: a per-attempt token carrying the deadline can
 * point at a per-sweep parent token, so one external requestCancel()
 * reaches every running job. Cancellation wins over deadline expiry
 * when both hold.
 */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Ask every observer of this token (or a child) to stop. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    bool
    cancelRequested() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        return parent_ && parent_->cancelRequested();
    }

    /** Arm a wall-clock deadline `seconds` from now (<= 0 disarms). */
    void
    setTimeout(double seconds)
    {
        if (seconds <= 0.0) {
            deadlineNs_.store(0, std::memory_order_relaxed);
            return;
        }
        auto d = std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(
                static_cast<int64_t>(seconds * 1e9));
        deadlineNs_.store(d.time_since_epoch().count(),
                          std::memory_order_relaxed);
    }

    bool
    deadlineExpired() const
    {
        int64_t d = deadlineNs_.load(std::memory_order_relaxed);
        if (d != 0 &&
            std::chrono::steady_clock::now().time_since_epoch().count()
                >= d)
            return true;
        return parent_ && parent_->deadlineExpired();
    }

    /** Observe `parent` too: its cancel/deadline applies here. */
    void chainTo(const CancelToken *parent) { parent_ = parent; }

  private:
    std::atomic<bool> cancelled_{false};
    /** steady_clock deadline in ns since its epoch; 0 = disarmed. */
    std::atomic<int64_t> deadlineNs_{0};
    const CancelToken *parent_ = nullptr;
};

/** Outcome of a runUntil() call. */
struct RunResult
{
    RunStatus status = RunStatus::Done;
    /** Cycles executed by this call. */
    uint64_t cycles = 0;

    bool done() const { return status == RunStatus::Done; }
};

/**
 * Fixed-order synchronous simulation engine.
 *
 * Components are registered once at machine construction; each call to
 * step() advances the machine one cycle by invoking tick() on every
 * component in order, then postTick() on every component in order.
 * runUntil() steps until a predicate is satisfied or a cycle limit is
 * hit (the limit guards against deadlocked models).
 *
 * In EngineMode::Skip the engine additionally queries every component's
 * nextEvent() after each dense cycle and, when the minimum lies beyond
 * the next cycle, credits the quiescent gap via skipTo() and jumps the
 * clock there in one step (see DESIGN.md §sim). Dense mode never calls
 * nextEvent()/skipTo() and remains the oracle.
 */
class Engine
{
  public:
    Engine() = default;

    /** Register a component. Not owned; must outlive the engine. */
    void add(Ticked *component);

    /**
     * Unregister every component and reset the clock to zero. The one
     * sanctioned way to rebuild a machine on the same engine: clearing
     * both together keeps interval components (watchdog, StatSampler)
     * that latch absolute cycle numbers in sync with the clock.
     */
    void clear();

    void setMode(EngineMode mode) { mode_ = mode; }
    EngineMode mode() const { return mode_; }

    /**
     * Tracer to dump diagnostics from (the owning machine's), plus a
     * label (machine/config name) tagging those dumps. Without one,
     * runUntil falls back to the process-global Tracer::instance() —
     * the standalone-engine path.
     */
    void
    setTracer(Tracer *tracer, std::string label)
    {
        tracer_ = tracer;
        label_ = std::move(label);
    }
    Tracer *tracer() const { return tracer_; }
    const std::string &label() const { return label_; }

    /**
     * Attach (or detach, with nullptr) a cooperative cancellation
     * token. runUntil() — and any external drive loop that calls
     * pollCancel(), e.g. StreamProgram::run — checks the token at
     * cycle boundaries: the cancelled flag every check, the wall-clock
     * deadline only once per deadlineCheckCycles() so the hot loop
     * never pays a clock read per cycle. Identical in dense and skip
     * mode: cancellation is only ever observed between engine steps,
     * at a consistent machine state.
     */
    void
    setCancel(const CancelToken *token)
    {
        cancel_ = token;
        nextDeadlineCheck_ = 0;
    }
    const CancelToken *cancelToken() const { return cancel_; }

    /**
     * Check the cancel token (cheap; safe without one). Returns
     * RunStatus::Cancelled / TimedOut when the run should stop, else
     * RunStatus::Done. Cancellation wins over deadline expiry.
     */
    RunStatus pollCancel();

    /** Default cycles between wall-clock deadline checks. */
    static constexpr Cycle kDeadlineCheckCycles = 1024;

    /**
     * Cycles between wall-clock deadline checks in pollCancel(). The
     * default (kDeadlineCheckCycles) keeps batch sweeps cheap; the
     * serving daemon tightens it so ms-scale per-request deadlines
     * are observed promptly even on slow jobs. Purely an
     * observability/latency knob: it changes *when* an expired
     * deadline is noticed, never the results of a run that completes
     * (MachineConfig::deadlineCheckCycles, excluded from job
     * fingerprints via SweepRunner::observabilityKnobs()).
     */
    void
    setDeadlineCheckCycles(Cycle n)
    {
        deadlineCheckCycles_ = n ? n : 1;
        nextDeadlineCheck_ = 0;
    }
    Cycle deadlineCheckCycles() const { return deadlineCheckCycles_; }

    /**
     * Advance one dense cycle; in skip mode, then fast-forward over any
     * provably quiescent gap (so one step() may advance many cycles).
     */
    void step();

    /**
     * Advance exactly n cycles in both modes (skip-mode jumps are
     * clamped to the target, so tests can still single-step).
     */
    void steps(uint64_t n);

    /**
     * Step until done() returns true or `limit` cycles have run.
     *
     * On hitting the limit the engine dumps the last trace-buffer
     * events to stderr (see sim/trace.h) and returns RunStatus::Limit
     * so callers can assert on deadlock behavior; it never panics.
     * With a cancel token attached (setCancel), returns
     * RunStatus::Cancelled / TimedOut as soon as the token trips —
     * checked before each step, so a finished run is never reported
     * cancelled and both engine modes stop at the same observable
     * points (cycle boundaries).
     *
     * @param done Predicate checked after each cycle.
     * @param limit Max cycles to run (deadlock guard).
     * @return Status and the number of cycles executed by this call.
     */
    RunResult runUntil(const std::function<bool()> &done,
                       uint64_t limit = 1ull << 32);

    /** Trace events dumped to stderr when runUntil hits its limit. */
    static constexpr size_t kDeadlockDumpEvents = 48;

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    // resetClock() was removed: it reset now_ without resetting the
    // components, silently desynchronizing anything that latches
    // absolute cycle numbers (watchdog checks, sampler boundaries,
    // fault schedules). Use clear() and re-register instead.

    /**
     * Snapshot restore only (Machine::loadSnapshot): set the clock to
     * the checkpointed cycle. Callers must restore every registered
     * component's absolute-cycle state in the same operation — the
     * exact desynchronization hazard that got resetClock() removed is
     * why this is not a general-purpose setter.
     */
    void
    restoreClock(Cycle now)
    {
        now_ = now;
        nextDeadlineCheck_ = 0;
    }

    size_t componentCount() const { return components_.size(); }

  private:
    /** One dense cycle: tick all, postTick all, now_++. */
    void tickOnce();

    /**
     * Skip mode: query min(nextEvent) and jump the clock over the
     * quiescent gap, crediting it via skipTo(). `bound` (kNoEvent =
     * none) is the first cycle the jump must not pass.
     */
    void fastForward(Cycle bound);

    std::vector<Ticked *> components_;
    /** Subset of components_ whose hasPostTick() is true. */
    std::vector<Ticked *> postTickers_;
    Cycle now_ = 0;
    EngineMode mode_ = EngineMode::Dense;
    Tracer *tracer_ = nullptr;
    std::string label_;
    const CancelToken *cancel_ = nullptr;
    /** Next absolute cycle at which pollCancel reads the wall clock. */
    Cycle nextDeadlineCheck_ = 0;
    Cycle deadlineCheckCycles_ = kDeadlineCheckCycles;
};

} // namespace isrf

#endif // ISRF_SIM_ENGINE_H
