/**
 * @file
 * Synchronous tick engine driving all machine components.
 */
#ifndef ISRF_SIM_ENGINE_H
#define ISRF_SIM_ENGINE_H

#include <functional>
#include <string>
#include <vector>

#include "sim/ticked.h"

namespace isrf {

class Tracer;

/** How a runUntil() loop ended. */
enum class RunStatus : uint8_t {
    Done,     ///< the predicate was satisfied
    Limit,    ///< the cycle limit was hit (likely a model deadlock)
    Stalled,  ///< a progress watchdog tripped (see fault/watchdog.h)
};

const char *runStatusName(RunStatus status);

/** Outcome of a runUntil() call. */
struct RunResult
{
    RunStatus status = RunStatus::Done;
    /** Cycles executed by this call. */
    uint64_t cycles = 0;

    bool done() const { return status == RunStatus::Done; }
};

/**
 * Fixed-order synchronous simulation engine.
 *
 * Components are registered once at machine construction; each call to
 * step() advances the machine one cycle by invoking tick() on every
 * component in order, then postTick() on every component in order.
 * runUntil() steps until a predicate is satisfied or a cycle limit is
 * hit (the limit guards against deadlocked models).
 *
 * In EngineMode::Skip the engine additionally queries every component's
 * nextEvent() after each dense cycle and, when the minimum lies beyond
 * the next cycle, credits the quiescent gap via skipTo() and jumps the
 * clock there in one step (see DESIGN.md §sim). Dense mode never calls
 * nextEvent()/skipTo() and remains the oracle.
 */
class Engine
{
  public:
    Engine() = default;

    /** Register a component. Not owned; must outlive the engine. */
    void add(Ticked *component);

    /**
     * Unregister every component and reset the clock to zero. The one
     * sanctioned way to rebuild a machine on the same engine: clearing
     * both together keeps interval components (watchdog, StatSampler)
     * that latch absolute cycle numbers in sync with the clock.
     */
    void clear();

    void setMode(EngineMode mode) { mode_ = mode; }
    EngineMode mode() const { return mode_; }

    /**
     * Tracer to dump diagnostics from (the owning machine's), plus a
     * label (machine/config name) tagging those dumps. Without one,
     * runUntil falls back to the process-global Tracer::instance() —
     * the standalone-engine path.
     */
    void
    setTracer(Tracer *tracer, std::string label)
    {
        tracer_ = tracer;
        label_ = std::move(label);
    }
    Tracer *tracer() const { return tracer_; }
    const std::string &label() const { return label_; }

    /**
     * Advance one dense cycle; in skip mode, then fast-forward over any
     * provably quiescent gap (so one step() may advance many cycles).
     */
    void step();

    /**
     * Advance exactly n cycles in both modes (skip-mode jumps are
     * clamped to the target, so tests can still single-step).
     */
    void steps(uint64_t n);

    /**
     * Step until done() returns true or `limit` cycles have run.
     *
     * On hitting the limit the engine dumps the last trace-buffer
     * events to stderr (see sim/trace.h) and returns RunStatus::Limit
     * so callers can assert on deadlock behavior; it never panics.
     *
     * @param done Predicate checked after each cycle.
     * @param limit Max cycles to run (deadlock guard).
     * @return Status and the number of cycles executed by this call.
     */
    RunResult runUntil(const std::function<bool()> &done,
                       uint64_t limit = 1ull << 32);

    /** Trace events dumped to stderr when runUntil hits its limit. */
    static constexpr size_t kDeadlockDumpEvents = 48;

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    // resetClock() was removed: it reset now_ without resetting the
    // components, silently desynchronizing anything that latches
    // absolute cycle numbers (watchdog checks, sampler boundaries,
    // fault schedules). Use clear() and re-register instead.

    size_t componentCount() const { return components_.size(); }

  private:
    /** One dense cycle: tick all, postTick all, now_++. */
    void tickOnce();

    /**
     * Skip mode: query min(nextEvent) and jump the clock over the
     * quiescent gap, crediting it via skipTo(). `bound` (kNoEvent =
     * none) is the first cycle the jump must not pass.
     */
    void fastForward(Cycle bound);

    std::vector<Ticked *> components_;
    Cycle now_ = 0;
    EngineMode mode_ = EngineMode::Dense;
    Tracer *tracer_ = nullptr;
    std::string label_;
};

} // namespace isrf

#endif // ISRF_SIM_ENGINE_H
