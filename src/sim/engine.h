/**
 * @file
 * Synchronous tick engine driving all machine components.
 */
#ifndef ISRF_SIM_ENGINE_H
#define ISRF_SIM_ENGINE_H

#include <functional>
#include <vector>

#include "sim/ticked.h"

namespace isrf {

/**
 * Fixed-order synchronous simulation engine.
 *
 * Components are registered once at machine construction; each call to
 * step() advances the machine one cycle by invoking tick() on every
 * component in order, then postTick() on every component in order.
 * runUntil() steps until a predicate is satisfied or a cycle limit is
 * hit (the limit guards against deadlocked models).
 */
class Engine
{
  public:
    Engine() = default;

    /** Register a component. Not owned; must outlive the engine. */
    void add(Ticked *component);

    /** Advance one cycle. */
    void step();

    /** Advance n cycles. */
    void steps(uint64_t n);

    /**
     * Step until done() returns true.
     *
     * On hitting `limit` the engine dumps the last trace-buffer events
     * to stderr (see sim/trace.h) before panicking, so deadlocks are
     * diagnosable when tracing is enabled.
     *
     * @param done Predicate checked after each cycle.
     * @param limit Max cycles to run before panicking (deadlock guard).
     * @return Number of cycles executed by this call.
     */
    uint64_t runUntil(const std::function<bool()> &done,
                      uint64_t limit = 1ull << 32);

    /** Trace events dumped to stderr on a runUntil deadlock panic. */
    static constexpr size_t kDeadlockDumpEvents = 48;

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    /** Reset the clock to zero (components are not reset). */
    void resetClock() { now_ = 0; }

    size_t componentCount() const { return components_.size(); }

  private:
    std::vector<Ticked *> components_;
    Cycle now_ = 0;
};

} // namespace isrf

#endif // ISRF_SIM_ENGINE_H
