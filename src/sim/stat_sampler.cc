#include "sim/stat_sampler.h"

#include <cstdio>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

StatSampler::StatSampler(uint64_t intervalCycles)
    : interval_(intervalCycles)
{
}

void
StatSampler::addGroup(StatGroup *group)
{
    if (!group)
        panic("StatSampler: null stat group");
    groups_.push_back(group);
    for (const auto &kv : group->counters())
        lastSnapshot_[group->name() + "." + kv.first] = kv.second.value();
}

void
StatSampler::addCounterFn(const std::string &name,
                          std::function<uint64_t()> fn)
{
    lastSnapshot_[name] = fn();
    counterFns_.emplace_back(name, std::move(fn));
}

void
StatSampler::addGauge(const std::string &name,
                      std::function<double()> fn)
{
    gauges_.emplace_back(name, std::move(fn));
}

void
StatSampler::tick(Cycle now)
{
    if (interval_ == 0)
        return;
    // Sample at the end of every interval_-cycle window: the sampler
    // ticks last each cycle, so `now` is the cycle just simulated.
    if ((now + 1) % interval_ != 0)
        return;
    sampleNow(now + 1);
}

Cycle
StatSampler::nextEvent(Cycle now)
{
    if (interval_ == 0)
        return kNoEvent;
    // tick() samples at cycles t with (t + 1) % interval_ == 0; the
    // first such t strictly after `now`:
    return ((now + 1) / interval_ + 1) * interval_ - 1;
}

void
StatSampler::sampleNow(Cycle now)
{
    StatInterval iv;
    iv.start = intervalStart_;
    iv.end = now;

    auto takeDelta = [&](const std::string &name, uint64_t value) {
        uint64_t &last = lastSnapshot_[name];
        iv.deltas[name] = value >= last ? value - last : 0;
        last = value;
    };
    for (StatGroup *g : groups_)
        for (const auto &kv : g->counters())
            takeDelta(g->name() + "." + kv.first, kv.second.value());
    for (const auto &cf : counterFns_)
        takeDelta(cf.first, cf.second());
    for (const auto &gf : gauges_)
        iv.gauges[gf.first] = gf.second();

    Tracer &t = tracer_ ? *tracer_ : Tracer::instance();
    if (t.on()) {
        if (!traceChInit_) {
            traceCh_ = t.channel("stats");
            traceChInit_ = true;
        }
        for (const auto &kv : iv.deltas)
            t.counter(traceCh_, t.intern(kv.first), now, kv.second);
        for (const auto &kv : iv.gauges) {
            t.counter(traceCh_, t.intern(kv.first), now,
                      static_cast<uint64_t>(kv.second));
        }
    }

    intervals_.push_back(std::move(iv));
    intervalStart_ = now;
}

void
StatSampler::reset()
{
    intervals_.clear();
    intervalStart_ = 0;
    rebaseline();
}

void
StatSampler::rebaseline()
{
    for (StatGroup *g : groups_)
        for (const auto &kv : g->counters())
            lastSnapshot_[g->name() + "." + kv.first] = kv.second.value();
    for (const auto &cf : counterFns_)
        lastSnapshot_[cf.first] = cf.second();
}

std::string
StatSampler::csv() const
{
    std::string out = "start,end,stat,value,kind\n";
    for (const StatInterval &iv : intervals_) {
        for (const auto &kv : iv.deltas) {
            out += strprintf("%llu,%llu,%s,%llu,delta\n",
                static_cast<unsigned long long>(iv.start),
                static_cast<unsigned long long>(iv.end),
                kv.first.c_str(),
                static_cast<unsigned long long>(kv.second));
        }
        for (const auto &kv : iv.gauges) {
            out += strprintf("%llu,%llu,%s,%g,gauge\n",
                static_cast<unsigned long long>(iv.start),
                static_cast<unsigned long long>(iv.end),
                kv.first.c_str(), kv.second);
        }
    }
    return out;
}

bool
StatSampler::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string content = csv();
    size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

void
StatSampler::saveState(SnapshotWriter &w) const
{
    w.u64(intervalStart_);
    w.u64(lastSnapshot_.size());
    for (const auto &[name, value] : lastSnapshot_) {
        w.str(name);
        w.u64(value);
    }
    w.u64(intervals_.size());
    for (const StatInterval &iv : intervals_) {
        w.u64(iv.start);
        w.u64(iv.end);
        w.u64(iv.deltas.size());
        for (const auto &[name, value] : iv.deltas) {
            w.str(name);
            w.u64(value);
        }
        w.u64(iv.gauges.size());
        for (const auto &[name, value] : iv.gauges) {
            w.str(name);
            w.f64(value);
        }
    }
}

bool
StatSampler::loadState(SnapshotReader &r)
{
    uint64_t nsnap = 0;
    if (!r.u64(intervalStart_) || !r.len(nsnap, 9))
        return false;
    lastSnapshot_.clear();
    for (uint64_t i = 0; i < nsnap; i++) {
        std::string name;
        uint64_t value = 0;
        if (!r.str(name) || !r.u64(value))
            return false;
        lastSnapshot_[name] = value;
    }
    uint64_t niv = 0;
    if (!r.len(niv, 17))
        return false;
    intervals_.clear();
    for (uint64_t i = 0; i < niv; i++) {
        StatInterval iv;
        uint64_t nd = 0, ng = 0;
        if (!r.u64(iv.start) || !r.u64(iv.end) || !r.len(nd, 9))
            return false;
        for (uint64_t d = 0; d < nd; d++) {
            std::string name;
            uint64_t value = 0;
            if (!r.str(name) || !r.u64(value))
                return false;
            iv.deltas[name] = value;
        }
        if (!r.len(ng, 9))
            return false;
        for (uint64_t g = 0; g < ng; g++) {
            std::string name;
            double value = 0;
            if (!r.str(name) || !r.f64(value))
                return false;
            iv.gauges[name] = value;
        }
        intervals_.push_back(std::move(iv));
    }
    return true;
}

} // namespace isrf
