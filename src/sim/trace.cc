#include "sim/trace.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <mutex>
#include <sstream>

#include "util/env.h"
#include "util/log.h"

namespace isrf {

namespace {

/** Serializes concurrent mergeFrom() calls (see Tracer::mergeFrom). */
std::mutex &
mergeMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

namespace {

/** Split a comma-separated list, dropping empty fields. */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

const char *
typeName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::Begin: return "B";
      case TraceEventType::End: return "E";
      case TraceEventType::Instant: return "i";
      case TraceEventType::Counter: return "C";
    }
    return "?";
}

/** Minimal JSON string escaping for event/channel names. */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (const char *p = s; *p; p++) {
        switch (*p) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(*p) < 0x20)
                out += strprintf("\\u%04x", *p);
            else
                out.push_back(*p);
        }
    }
    return out;
}

} // namespace

Tracer &
Tracer::instance()
{
    // The CLI shim keeps the historical behavior of configuring itself
    // from the environment on first use; per-machine tracers are
    // configured explicitly from MachineConfig instead.
    static Tracer t;
    static bool envApplied = [] {
        std::vector<std::string> errs;
        uint64_t cap =
            envU64("ISRF_TRACE_CAPACITY", kDefaultCapacity, &errs);
        if (cap == 0) {
            errs.push_back("ISRF_TRACE_CAPACITY=0 is invalid; using "
                           "default");
            cap = kDefaultCapacity;
        }
        t.setCapacity(cap);
        std::string spec = envStr("ISRF_TRACE");
        if (!spec.empty())
            t.enableChannels(spec);
        warnEnvErrors(errs);
        return true;
    }();
    (void)envApplied;
    return t;
}

uint16_t
Tracer::channel(const std::string &name)
{
    for (size_t i = 0; i < channels_.size(); i++)
        if (channels_[i].name == name)
            return static_cast<uint16_t>(i);
    if (channels_.size() >= 0xFFFF)
        panic("Tracer: too many channels");
    Channel ch;
    ch.name = name;
    ch.enabled = enableAll_ ||
        std::find(pendingEnables_.begin(), pendingEnables_.end(), name) !=
            pendingEnables_.end();
    channels_.push_back(ch);
    refreshEnabledFlag();
    return static_cast<uint16_t>(channels_.size() - 1);
}

const std::string &
Tracer::channelName(uint16_t id) const
{
    static const std::string empty;
    return id < channels_.size() ? channels_[id].name : empty;
}

void
Tracer::enableChannels(const std::string &spec)
{
    if (spec.empty() || spec == "0") {
        disable();
        return;
    }
    // Lazily allocate the ring: a never-enabled tracer costs nothing.
    if (ring_.empty())
        setCapacity(kDefaultCapacity);
    if (spec == "all" || spec == "1") {
        enableAll_ = true;
        for (auto &ch : channels_)
            ch.enabled = true;
        refreshEnabledFlag();
        return;
    }
    enableAll_ = false;
    pendingEnables_ = splitCsv(spec);
    for (auto &ch : channels_) {
        ch.enabled =
            std::find(pendingEnables_.begin(), pendingEnables_.end(),
                      ch.name) != pendingEnables_.end();
    }
    refreshEnabledFlag();
}

void
Tracer::disable()
{
    enableAll_ = false;
    pendingEnables_.clear();
    for (auto &ch : channels_)
        ch.enabled = false;
    refreshEnabledFlag();
}

bool
Tracer::channelEnabled(uint16_t id) const
{
    return id < channels_.size() && channels_[id].enabled;
}

void
Tracer::refreshEnabledFlag()
{
    anyEnabled_ = enableAll_ || !pendingEnables_.empty();
    if (anyEnabled_)
        return;
    for (const auto &ch : channels_) {
        if (ch.enabled) {
            anyEnabled_ = true;
            return;
        }
    }
}

void
Tracer::setCapacity(size_t events)
{
    if (events == 0)
        panic("Tracer: zero capacity");
    ring_.assign(events, TraceEvent());
    head_ = 0;
    count_ = 0;
    totalRecorded_ = 0;
}

void
Tracer::clear()
{
    head_ = 0;
    count_ = 0;
    totalRecorded_ = 0;
}

const char *
Tracer::intern(const std::string &s)
{
    return interned_.insert(s).first->c_str();
}

void
Tracer::record(uint16_t ch, TraceEventType type, const char *name,
               Cycle ts, uint64_t arg)
{
    if (!channelEnabled(ch) || ring_.empty())
        return;
    TraceEvent e;
    e.ts = ts;
    e.channel = ch;
    e.type = type;
    e.name = name;
    e.arg = arg;
    append(e);
}

void
Tracer::append(const TraceEvent &e)
{
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size())
        count_++;
    totalRecorded_++;
}

void
Tracer::mergeFrom(const Tracer &other)
{
    std::lock_guard<std::mutex> lock(mergeMutex());
    if (ring_.empty())
        setCapacity(kDefaultCapacity);
    for (const TraceEvent &src : other.events()) {
        TraceEvent e = src;
        // The source's channel ids and interned names die with it;
        // remap into this tracer's tables.
        e.channel = channel(other.channelName(src.channel));
        e.name = intern(src.name);
        append(e);
    }
}

std::vector<TraceEvent>
Tracer::lastEvents(size_t n) const
{
    n = std::min(n, count_);
    std::vector<TraceEvent> out;
    out.reserve(n);
    // Oldest of the n requested events sits n slots behind head_.
    size_t start = (head_ + ring_.size() - n) % ring_.size();
    for (size_t i = 0; i < n; i++)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::string
Tracer::chromeJson() const
{
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    // Metadata: name each channel as a thread so Perfetto labels rows.
    for (size_t c = 0; c < channels_.size(); c++) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            << "\"tid\":" << c << ",\"args\":{\"name\":\""
            << jsonEscape(channels_[c].name.c_str()) << "\"}}";
    }
    for (const TraceEvent &e : lastEvents(count_)) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"name\":\"" << jsonEscape(e.name) << "\",\"ph\":\""
            << typeName(e.type) << "\",\"ts\":" << e.ts
            << ",\"pid\":0,\"tid\":" << e.channel;
        if (e.type == TraceEventType::Counter)
            out << ",\"args\":{\"value\":" << e.arg << "}";
        else if (e.type == TraceEventType::Instant)
            out << ",\"s\":\"t\",\"args\":{\"arg\":" << e.arg << "}";
        else
            out << ",\"args\":{\"arg\":" << e.arg << "}";
        out << "}";
    }
    out << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
        << "\"clock\":\"machine cycles (1 cycle = 1us in this view)\","
        << "\"dropped\":" << dropped() << "}}";
    return out.str();
}

std::string
Tracer::csv() const
{
    std::ostringstream out;
    out << "cycle,channel,type,name,arg\n";
    for (const TraceEvent &e : lastEvents(count_)) {
        out << e.ts << "," << channelName(e.channel) << ","
            << typeName(e.type) << "," << e.name << "," << e.arg << "\n";
    }
    return out.str();
}

namespace {

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace

bool
Tracer::writeChromeJson(const std::string &path) const
{
    return writeFile(path, chromeJson());
}

bool
Tracer::writeCsv(const std::string &path) const
{
    return writeFile(path, csv());
}

void
Tracer::dumpTail(std::FILE *out, size_t n, const char *label) const
{
    auto tail = lastEvents(n);
    std::fprintf(out,
                 "--- [%s] last %zu trace events (of %llu recorded) ---\n",
                 label && *label ? label : "tracer", tail.size(),
                 static_cast<unsigned long long>(totalRecorded_));
    for (const TraceEvent &e : tail) {
        std::fprintf(out, "  cycle %-10llu %-8s %-2s %-24s arg=%llu\n",
                     static_cast<unsigned long long>(e.ts),
                     channelName(e.channel).c_str(), typeName(e.type),
                     e.name, static_cast<unsigned long long>(e.arg));
    }
    if (tail.empty())
        std::fprintf(out, "  (trace buffer empty; set ISRF_TRACE=all to "
                          "capture events)\n");
}

} // namespace isrf
