/**
 * @file
 * Host-side self-profiler: where does the simulator's *wall-clock*
 * time go?
 *
 * The tracer and sampler (sim/trace.h, sim/stat_sampler.h) observe
 * *simulated* time; this profiler attributes *host* time to a fixed
 * set of phases (dense component ticks, skip-jump bookkeeping, SRF
 * port arbitration, the memory system, journal fsyncs, report
 * serialization) so the ROADMAP's "as fast as the hardware allows"
 * work can be profile-driven instead of guessed.
 *
 * Design constraints, in order:
 *  1. Zero observable effect on simulation results. The profiler only
 *     reads the wall clock — it never touches machine state, so a
 *     profiled run's resultJson() is byte-identical to an unprofiled
 *     one (asserted in tests and CI).
 *  2. Low overhead. Disabled: one predictable branch per scope.
 *     Enabled: hot per-cycle phases count every entry but read the
 *     clock only once per `stride` entries (per phase); the report
 *     extrapolates (ns * calls / timed). Coarse phases (journal,
 *     report serialization, whole runs) are always timed.
 *  3. Isolation. Each Machine owns a Profiler (like its Tracer), so
 *     parallel sweep workers never contend; per-machine profiles are
 *     folded into the process-global instance() shim at harvest time
 *     via lock-free mergeFrom (all accumulators are relaxed atomics).
 *
 * Enabling (see MachineConfig::fromEnv and bench --profile):
 *   ISRF_PROFILE=on        enable, default stride
 *   ISRF_PROFILE=on:16     enable, time 1 of every 16 hot-phase entries
 *   ISRF_PROFILE=1         same as "on"
 *   ISRF_PROFILE=0 / off / unset   disabled
 *
 * Exports: a "profile" section in machineReportJson (profiled machines
 * only), a Chrome-trace/speedscope-compatible dump (--profile <file>),
 * and the aggregate "profile" object in bench_sweep's BENCH_*.json
 * perf records.
 */
#ifndef ISRF_SIM_PROFILER_H
#define ISRF_SIM_PROFILER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace isrf {

class JsonWriter;

class Profiler
{
  public:
    /**
     * Host-time attribution buckets. A fixed enum (not a string map)
     * keeps the hot path to array indexing; extend it when a new
     * subsystem becomes worth attributing.
     */
    enum Phase : uint8_t {
        MachineTick,  ///< Machine::tick, whole cycle (sampled)
        ClusterTick,  ///< all lanes' cluster ticks (sampled)
        SrfCycle,     ///< SRF endCycle: port arbitration (sampled)
        MemTick,      ///< memory system tick (sampled)
        SkipJump,     ///< skip-mode nextEvent/skipTo bookkeeping (sampled)
        Journal,      ///< sweep journal append + fsync (always timed)
        Report,       ///< report/result JSON serialization (always timed)
        Run,          ///< whole StreamProgram::run drive loops (timed)
        kPhaseCount,
    };

    static const char *phaseName(Phase p);

    /** True for hot per-cycle phases that are stride-sampled. */
    static bool phaseSampled(Phase p);

    /** Default hot-phase sampling stride (1 of every N entries). */
    static constexpr uint64_t kDefaultStride = 64;

    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * The process-global aggregate (CLI shim, like Tracer::instance()).
     * First call parses ISRF_PROFILE (warn-and-default on a malformed
     * value). Per-machine profiles are merged into it at workload
     * harvest; the sweep runner's journal/report scopes record here
     * directly. All mutation is relaxed-atomic, so concurrent sweep
     * workers need no lock.
     */
    static Profiler &instance();

    /**
     * Parse an ISRF_PROFILE-style spec ("0"/"off", "1"/"on",
     * "on:<stride>"). On success sets `enabled`/`stride` and returns
     * true; on a malformed spec appends a description to `errs`
     * (when non-null), leaves the outputs untouched and returns false.
     * An empty spec is "leave unchanged" and returns false with no
     * error (matching ISRF_TRACE's unset semantics).
     */
    static bool parseSpec(const std::string &spec, bool &enabled,
                          uint64_t &stride,
                          std::vector<std::string> *errs);

    /** Enable/disable and set the hot-phase stride (min 1). */
    void configure(bool enabled, uint64_t stride = kDefaultStride);

    bool enabled() const { return enabled_; }
    uint64_t stride() const { return stride_; }

    /** Zero every accumulator (enablement and stride survive). */
    void reset();

    /**
     * Fold another profiler's accumulators into this one. Safe against
     * concurrent mergeFrom/Scope recording on the destination (relaxed
     * atomics); `other` must be quiescent, which holds at harvest time
     * when its owning machine has finished running.
     */
    void mergeFrom(const Profiler &other);

    /** Snapshot of one phase's accumulators. */
    struct PhaseStats
    {
        uint64_t calls = 0;  ///< top-level scope entries
        uint64_t timed = 0;  ///< entries that read the clock
        uint64_t ns = 0;     ///< wall nanoseconds over the timed entries
        /** Extrapolated total ns: ns * calls / timed (0 when untimed). */
        double
        estNs() const
        {
            return timed ? static_cast<double>(ns) *
                    static_cast<double>(calls) /
                    static_cast<double>(timed)
                         : 0.0;
        }
    };

    PhaseStats phase(Phase p) const;

    /** Sum of estNs() over all phases except the MachineTick/Run
     *  umbrellas (which contain the others). */
    double leafEstNs() const;

    /** True when any phase recorded at least one call. */
    bool hasData() const;

    /** Emit {"stride":...,"phases":{...}} in value position. */
    void reportJson(JsonWriter &w) const;

    /** reportJson() as a standalone string. */
    std::string reportJson() const;

    /**
     * The aggregate as Chrome trace-event JSON (one "X" complete event
     * per phase, laid end to end, dur = extrapolated time). Loads in
     * chrome://tracing, Perfetto, and speedscope; the per-phase call
     * counts ride in "args".
     */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to a file. @return false on I/O error. */
    bool writeChromeTrace(const std::string &path) const;

    /**
     * RAII scoped timer. Construction/destruction is a single branch
     * when the profiler is disabled. Reentrant scopes on the same
     * (profiler, phase) are no-ops past the outermost one — recursion
     * neither double-counts time nor inflates the call count (the
     * outer scope's measurement already contains the inner's).
     */
    class Scope
    {
      public:
        Scope(Profiler &p, Phase ph)
        {
            if (!p.enabled_)
                return;
            p_ = &p;
            ph_ = ph;
            p.enter(*this, ph);
        }

        ~Scope()
        {
            if (p_)
                p_->leave(*this, ph_);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        friend class Profiler;
        Profiler *p_ = nullptr;
        Phase ph_ = MachineTick;
        int64_t t0_ = 0;
        bool outer_ = false;   ///< outermost scope for this phase
        bool timing_ = false;  ///< this entry reads the clock
    };

  private:
    friend class Scope;

    struct Acc
    {
        std::atomic<uint64_t> calls{0};
        std::atomic<uint64_t> timed{0};
        std::atomic<uint64_t> ns{0};
        /**
         * Live scope nesting for the reentrancy guard. On the shared
         * instance() shim a concurrent same-phase scope on another
         * thread is treated like a reentrant one (not timed, not
         * counted); in practice shim phases (Journal under its mutex,
         * Report) do not overlap same-phase.
         */
        std::atomic<uint32_t> depth{0};
    };

    void enter(Scope &s, Phase ph);
    void leave(Scope &s, Phase ph);

    bool enabled_ = false;
    uint64_t stride_ = kDefaultStride;
    Acc acc_[kPhaseCount];
};

} // namespace isrf

#endif // ISRF_SIM_PROFILER_H
