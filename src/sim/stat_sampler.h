/**
 * @file
 * Interval statistics sampler: a Ticked component that snapshots
 * registered statistics every N cycles and keeps per-interval deltas,
 * turning the simulator's flat end-of-run counters into utilization /
 * bandwidth time-series (SRF port grants, bank conflicts, DRAM words
 * and row hits, memory queue depth, cluster busy fraction, ...).
 *
 * Three kinds of sources can be registered:
 *  - StatGroup*: every counter in the group is delta-sampled as
 *    "<group>.<name>";
 *  - counter functions: any monotonically increasing uint64_t readout
 *    (e.g. Dram::wordsTransferred), delta-sampled;
 *  - gauges: instantaneous double readouts (e.g. queue depth), sampled
 *    as-is at each interval boundary.
 *
 * When tracing is enabled the sampler also emits Counter trace events
 * on its "stats" channel, so Perfetto renders the series alongside the
 * event timeline.
 */
#ifndef ISRF_SIM_STAT_SAMPLER_H
#define ISRF_SIM_STAT_SAMPLER_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/ticked.h"
#include "util/stats.h"

namespace isrf {

/** One sampling interval's worth of stat deltas and gauge readouts. */
struct StatInterval
{
    Cycle start = 0;  ///< first cycle of the interval
    Cycle end = 0;    ///< cycle the sample was taken (exclusive)
    /** "group.stat" -> increase over this interval. */
    std::map<std::string, uint64_t> deltas;
    /** gauge name -> instantaneous value at `end`. */
    std::map<std::string, double> gauges;
};

class Tracer;

/** Periodically snapshots registered stats (see file comment). */
class StatSampler : public Ticked
{
  public:
    explicit StatSampler(uint64_t intervalCycles = 0);

    /**
     * Tracer to emit Counter events into (the owning machine's).
     * Unset, the sampler falls back to the global Tracer::instance().
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Sampling period in cycles; 0 disables sampling. */
    void setInterval(uint64_t cycles) { interval_ = cycles; }
    uint64_t interval() const { return interval_; }
    bool enabled() const { return interval_ > 0; }

    /** Register a stat group; all its counters get delta-sampled. */
    void addGroup(StatGroup *group);

    /** Register a monotonically increasing counter readout. */
    void addCounterFn(const std::string &name,
                      std::function<uint64_t()> fn);

    /** Register an instantaneous gauge readout. */
    void addGauge(const std::string &name, std::function<double()> fn);

    /** Ticked: samples when (now+1) hits an interval boundary. */
    void tick(Cycle now) override;
    std::string tickedName() const override { return "stat_sampler"; }

    /** Next interval-boundary cycle (skip mode); kNoEvent if disabled. */
    Cycle nextEvent(Cycle now) override;

    /** Force a sample at `now` (e.g. end of run, partial interval). */
    void sampleNow(Cycle now);

    const std::vector<StatInterval> &intervals() const
    {
        return intervals_;
    }

    /** Drop collected intervals and re-baseline the snapshots. */
    void reset();

    /**
     * Render intervals as CSV: one row per (interval, stat), columns
     * "start,end,stat,delta_or_value,kind".
     */
    std::string csv() const;

    /** Write csv() to a file. @return false on I/O error. */
    bool writeCsv(const std::string &path) const;

    /** Interval cursor, last-snapshot baseline and collected intervals
     *  (util/snapshot.h). Registered sources are init() wiring. */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    void rebaseline();

    uint64_t interval_ = 0;
    Cycle intervalStart_ = 0;
    std::vector<StatGroup *> groups_;
    std::vector<std::pair<std::string, std::function<uint64_t()>>>
        counterFns_;
    std::vector<std::pair<std::string, std::function<double()>>> gauges_;
    /** "group.stat"/counter-fn name -> last snapshot value. */
    std::map<std::string, uint64_t> lastSnapshot_;
    std::vector<StatInterval> intervals_;
    Tracer *tracer_ = nullptr;
    uint16_t traceCh_ = 0;
    bool traceChInit_ = false;
};

} // namespace isrf

#endif // ISRF_SIM_STAT_SAMPLER_H
