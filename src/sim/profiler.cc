#include "sim/profiler.h"

#include <chrono>

#include "util/env.h"
#include "util/json.h"
#include "util/log.h"

namespace isrf {

namespace {

int64_t
nowNs()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace

const char *
Profiler::phaseName(Phase p)
{
    switch (p) {
      case MachineTick: return "machine_tick";
      case ClusterTick: return "cluster_tick";
      case SrfCycle: return "srf_port_arb";
      case MemTick: return "mem_tick";
      case SkipJump: return "skip_jump";
      case Journal: return "journal";
      case Report: return "report_serialize";
      case Run: return "run_loop";
      case kPhaseCount: break;
    }
    return "?";
}

bool
Profiler::phaseSampled(Phase p)
{
    switch (p) {
      case MachineTick:
      case ClusterTick:
      case SrfCycle:
      case MemTick:
      case SkipJump:
        return true;
      default:
        return false;
    }
}

Profiler &
Profiler::instance()
{
    // CLI shim, mirroring Tracer::instance(): the one profiler that
    // reads the environment, because it exists before any
    // MachineConfig::fromEnv() snapshot (bench --profile exports
    // ISRF_PROFILE and then forces construction).
    static Profiler *global = [] {
        auto *p = new Profiler();
        bool enabled = false;
        uint64_t stride = kDefaultStride;
        std::vector<std::string> errs;
        if (parseSpec(envStr("ISRF_PROFILE"), enabled, stride, &errs))
            p->configure(enabled, stride);
        warnEnvErrors(errs);
        return p;
    }();
    return *global;
}

bool
Profiler::parseSpec(const std::string &spec, bool &enabled,
                    uint64_t &stride, std::vector<std::string> *errs)
{
    if (spec.empty())
        return false;
    if (spec == "0" || spec == "off") {
        enabled = false;
        return true;
    }
    if (spec == "1" || spec == "on") {
        enabled = true;
        stride = kDefaultStride;
        return true;
    }
    if (spec.rfind("on:", 0) == 0) {
        uint64_t s = 0;
        if (parseU64(spec.substr(3), s) && s >= 1) {
            enabled = true;
            stride = s;
            return true;
        }
    }
    if (errs)
        errs->push_back(strprintf(
            "ISRF_PROFILE='%s' is invalid (expected 0|off|1|on|"
            "on:<stride>); profiling unchanged", spec.c_str()));
    return false;
}

void
Profiler::configure(bool enabled, uint64_t stride)
{
    enabled_ = enabled;
    stride_ = stride ? stride : 1;
}

void
Profiler::reset()
{
    for (auto &a : acc_) {
        a.calls.store(0, std::memory_order_relaxed);
        a.timed.store(0, std::memory_order_relaxed);
        a.ns.store(0, std::memory_order_relaxed);
        a.depth.store(0, std::memory_order_relaxed);
    }
}

void
Profiler::mergeFrom(const Profiler &other)
{
    for (int p = 0; p < kPhaseCount; p++) {
        const Acc &src = other.acc_[p];
        Acc &dst = acc_[p];
        dst.calls.fetch_add(src.calls.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        dst.timed.fetch_add(src.timed.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        dst.ns.fetch_add(src.ns.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
}

void
Profiler::enter(Scope &s, Phase ph)
{
    Acc &a = acc_[ph];
    // Reentrancy guard: only the outermost scope of a phase counts or
    // times — an inner scope's cost is already inside the outer span.
    if (a.depth.fetch_add(1, std::memory_order_relaxed) != 0)
        return;
    s.outer_ = true;
    uint64_t call = a.calls.fetch_add(1, std::memory_order_relaxed);
    if (phaseSampled(ph) && call % stride_ != 0)
        return;
    s.timing_ = true;
    s.t0_ = nowNs();
}

void
Profiler::leave(Scope &s, Phase ph)
{
    Acc &a = acc_[ph];
    if (s.timing_) {
        a.ns.fetch_add(static_cast<uint64_t>(nowNs() - s.t0_),
                       std::memory_order_relaxed);
        a.timed.fetch_add(1, std::memory_order_relaxed);
    }
    a.depth.fetch_sub(1, std::memory_order_relaxed);
}

Profiler::PhaseStats
Profiler::phase(Phase p) const
{
    const Acc &a = acc_[p];
    PhaseStats s;
    s.calls = a.calls.load(std::memory_order_relaxed);
    s.timed = a.timed.load(std::memory_order_relaxed);
    s.ns = a.ns.load(std::memory_order_relaxed);
    return s;
}

double
Profiler::leafEstNs() const
{
    double total = 0.0;
    for (int p = 0; p < kPhaseCount; p++) {
        if (p == MachineTick || p == Run)
            continue;  // umbrellas: they contain the leaf phases
        total += phase(static_cast<Phase>(p)).estNs();
    }
    return total;
}

bool
Profiler::hasData() const
{
    for (int p = 0; p < kPhaseCount; p++)
        if (acc_[p].calls.load(std::memory_order_relaxed) > 0)
            return true;
    return false;
}

void
Profiler::reportJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("stride", stride_);
    w.key("phases").beginObject();
    for (int p = 0; p < kPhaseCount; p++) {
        PhaseStats s = phase(static_cast<Phase>(p));
        if (s.calls == 0)
            continue;
        w.key(phaseName(static_cast<Phase>(p))).beginObject();
        w.field("calls", s.calls);
        w.field("timed", s.timed);
        w.field("ns", s.ns);
        w.field("est_ns", s.estNs());
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
Profiler::reportJson() const
{
    JsonWriter w;
    reportJson(w);
    return w.str();
}

std::string
Profiler::chromeTraceJson() const
{
    // One complete ("X") event per phase, laid end to end on a
    // synthetic timeline: the aggregate has durations, not start
    // times, and every Chrome-trace consumer (chrome://tracing,
    // Perfetto, speedscope) renders this as a per-phase cost bar.
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();
    double tsUs = 0.0;
    for (int p = 0; p < kPhaseCount; p++) {
        PhaseStats s = phase(static_cast<Phase>(p));
        if (s.calls == 0)
            continue;
        double durUs = s.estNs() / 1e3;
        w.beginObject();
        w.field("name",
                std::string(phaseName(static_cast<Phase>(p))));
        w.field("ph", std::string("X"));
        w.field("cat", std::string("host-profile"));
        w.field("ts", tsUs);
        w.field("dur", durUs);
        w.field("pid", uint64_t{0});
        w.field("tid", uint64_t{0});
        w.key("args").beginObject();
        w.field("calls", s.calls);
        w.field("timed", s.timed);
        w.field("measured_ns", s.ns);
        w.endObject();
        w.endObject();
        tsUs += durUs;
    }
    w.endArray();
    w.field("displayTimeUnit", std::string("ms"));
    w.endObject();
    return w.str();
}

bool
Profiler::writeChromeTrace(const std::string &path) const
{
    return writeTextFile(path, chromeTraceJson());
}

} // namespace isrf
