/**
 * @file
 * Core simulation types: cycle counts and the Ticked component interface.
 *
 * The simulator is a synchronous, fixed-order tick engine: every
 * component's tick() is invoked once per cycle in registration order.
 * Components that need a post-pass (e.g. to commit values written by
 * later components in the same cycle) implement postTick().
 */
#ifndef ISRF_SIM_TICKED_H
#define ISRF_SIM_TICKED_H

#include <cstdint>
#include <string>

namespace isrf {

/** Simulation time in machine cycles. */
using Cycle = uint64_t;

/** A 32-bit machine word: the unit of SRF and DRAM storage (Table 3). */
using Word = uint32_t;

/** Interface for components advanced by the tick engine. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance one cycle. Called once per cycle in registration order. */
    virtual void tick(Cycle now) = 0;

    /** Optional second phase, after all components ticked. */
    virtual void postTick(Cycle now) { (void)now; }

    /** Component name for stats and tracing. */
    virtual std::string tickedName() const = 0;
};

} // namespace isrf

#endif // ISRF_SIM_TICKED_H
