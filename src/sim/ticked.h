/**
 * @file
 * Core simulation types: cycle counts and the Ticked component interface.
 *
 * The simulator is a synchronous, fixed-order tick engine: every
 * component's tick() is invoked once per cycle in registration order.
 * Components that need a post-pass (e.g. to commit values written by
 * later components in the same cycle) implement postTick().
 */
#ifndef ISRF_SIM_TICKED_H
#define ISRF_SIM_TICKED_H

#include <cstdint>
#include <string>

namespace isrf {

/** Simulation time in machine cycles. */
using Cycle = uint64_t;

/** A 32-bit machine word: the unit of SRF and DRAM storage (Table 3). */
using Word = uint32_t;

/**
 * nextEvent() sentinel: the component has no self-driven future event
 * (it only reacts to other components or external stimulus).
 */
constexpr Cycle kNoEvent = ~Cycle(0);

/** Tick-engine mode (MachineConfig::engineMode / ISRF_ENGINE). */
enum class EngineMode : uint8_t {
    Dense,  ///< tick every component every cycle (the oracle)
    Skip,   ///< jump over provably quiescent cycles (same stats)
};

const char *engineModeName(EngineMode mode);

/** Interface for components advanced by the tick engine. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance one cycle. Called once per cycle in registration order. */
    virtual void tick(Cycle now) = 0;

    /**
     * Optional second phase, after all components ticked. A component
     * that overrides postTick() must also override hasPostTick() to
     * return true — the engine only invokes postTick() on components
     * that declared it, so the per-cycle post-pass costs nothing when
     * (as is typical) no component uses it.
     */
    virtual void postTick(Cycle now) { (void)now; }

    /** Declare that postTick() is overridden (see above). */
    virtual bool hasPostTick() const { return false; }

    /**
     * Earliest cycle at which this component can next change observable
     * state, queried right after it ticked at `now` (skip mode only).
     *
     * Contract (see DESIGN.md §sim):
     *  - the return value must be > now or kNoEvent; a value <= now is
     *    a model bug and panics the engine (no time travel);
     *  - conservative-early is always legal (the default `now + 1`
     *    means "I may act every cycle" and disables skipping);
     *  - late is a model bug: the engine will not tick the component
     *    again before the reported cycle, so under-reporting activity
     *    silently diverges from dense mode;
     *  - kNoEvent means the component will never act again on its own.
     */
    virtual Cycle nextEvent(Cycle now) { return now + 1; }

    /**
     * Credit the skipped cycles [from, to) — cycles this component will
     * never be ticked at. Must reproduce, in bulk, every side effect a
     * dense tick would have had on those cycles (per-cycle counters,
     * histogram samples, round-robin pointer rotation, breakdown
     * buckets), so skip-mode statistics stay cycle-for-cycle identical
     * to dense mode. Only called when every registered component agreed
     * (via nextEvent) that [from, to) is quiescent.
     */
    virtual void skipTo(Cycle from, Cycle to)
    {
        (void)from;
        (void)to;
    }

    /** Component name for stats and tracing. */
    virtual std::string tickedName() const = 0;
};

} // namespace isrf

#endif // ISRF_SIM_TICKED_H
