#include "sim/engine.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

void
Engine::add(Ticked *component)
{
    if (!component)
        panic("Engine::add: null component");
    components_.push_back(component);
    // Type-segregated dispatch: the post-pass only visits components
    // that declared a postTick() override, so the common all-default
    // case pays zero virtual calls per cycle for it.
    if (component->hasPostTick())
        postTickers_.push_back(component);
}

void
Engine::clear()
{
    components_.clear();
    postTickers_.clear();
    now_ = 0;
    nextDeadlineCheck_ = 0;
}

RunStatus
Engine::pollCancel()
{
    if (!cancel_)
        return RunStatus::Done;
    // The atomic flag is a relaxed load — cheap enough for every
    // check point. The wall clock is read at most once per
    // deadlineCheckCycles_ simulated cycles; skip-mode jumps may cross
    // several boundaries, which only means the next poll reads the
    // clock once (deadlines stay honored, just never over-sampled).
    if (cancel_->cancelRequested())
        return RunStatus::Cancelled;
    if (now_ >= nextDeadlineCheck_) {
        nextDeadlineCheck_ = now_ + deadlineCheckCycles_;
        if (cancel_->deadlineExpired())
            return RunStatus::TimedOut;
    }
    return RunStatus::Done;
}

void
Engine::tickOnce()
{
    for (Ticked *c : components_)
        c->tick(now_);
    for (Ticked *c : postTickers_)
        c->postTick(now_);
    now_++;
}

void
Engine::fastForward(Cycle bound)
{
    // now_ - 1 is the cycle every component just ticked at; each
    // reports the earliest future cycle it can act. The minimum is the
    // next cycle worth simulating densely.
    const Cycle last = now_ - 1;
    Cycle wake = kNoEvent;
    for (Ticked *c : components_) {
        Cycle ne = c->nextEvent(last);
        if (ne <= last)
            panic("Engine: component '%s' returned stale nextEvent "
                  "%llu at cycle %llu (time travel)",
                  c->tickedName().c_str(),
                  static_cast<unsigned long long>(ne),
                  static_cast<unsigned long long>(last));
        wake = std::min(wake, ne);
        // now_ is the minimum any component may legally report; once
        // reached, the remaining queries cannot lower it.
        if (wake == now_)
            return;
    }
    if (wake == kNoEvent)
        return;  // nothing self-driven pending: stay dense, don't spin
    if (bound != kNoEvent)
        wake = std::min(wake, bound);
    if (wake <= now_)
        return;
    for (Ticked *c : components_)
        c->skipTo(now_, wake);
    now_ = wake;
}

void
Engine::step()
{
    tickOnce();
    if (mode_ == EngineMode::Skip && !components_.empty())
        fastForward(kNoEvent);
}

void
Engine::steps(uint64_t n)
{
    const Cycle target = now_ + n;
    while (now_ < target) {
        tickOnce();
        if (mode_ == EngineMode::Skip && !components_.empty())
            fastForward(target);
    }
}

RunResult
Engine::runUntil(const std::function<bool()> &done, uint64_t limit)
{
    const Cycle start = now_;
    while (!done()) {
        uint64_t executed = now_ - start;
        // Cooperative cancellation/deadline: checked between steps
        // (after the done() test), so a satisfied predicate always
        // wins and both engine modes stop at a cycle boundary with a
        // consistent machine state.
        RunStatus cs = pollCancel();
        if (cs != RunStatus::Done) {
            ISRF_WARN("Engine::runUntil%s%s%s: %s after %llu cycles "
                      "at cycle %llu",
                      label_.empty() ? "" : " [",
                      label_.c_str(), label_.empty() ? "" : "]",
                      runStatusName(cs),
                      static_cast<unsigned long long>(executed),
                      static_cast<unsigned long long>(now_));
            return {cs, executed};
        }
        if (executed >= limit) {
            // Dump the tail of the event trace first: a deadlocked
            // model's last grants/stalls are the diagnosis. Use the
            // owning machine's tracer so a multi-machine process never
            // prints another run's events.
            const Tracer &t = tracer_ ? *tracer_ : Tracer::instance();
            t.dumpTail(stderr, kDeadlockDumpEvents, label_.c_str());
            ISRF_WARN("Engine::runUntil%s%s%s: cycle limit %llu exceeded "
                      "after %llu cycles, at cycle %llu (model "
                      "deadlock?)",
                      label_.empty() ? "" : " [",
                      label_.c_str(), label_.empty() ? "" : "]",
                      static_cast<unsigned long long>(limit),
                      static_cast<unsigned long long>(executed),
                      static_cast<unsigned long long>(now_));
            return {RunStatus::Limit, executed};
        }
        tickOnce();
        // Clamp jumps to the limit boundary so `executed` and the
        // deadlock diagnostics stay exact in skip mode.
        if (mode_ == EngineMode::Skip && !components_.empty())
            fastForward(start + limit);
    }
    return {RunStatus::Done, now_ - start};
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Done: return "done";
      case RunStatus::Limit: return "limit";
      case RunStatus::Stalled: return "stalled";
      case RunStatus::TimedOut: return "timed_out";
      case RunStatus::Cancelled: return "cancelled";
      case RunStatus::Failed: return "failed";
    }
    return "?";
}

bool
runStatusFromName(const std::string &name, RunStatus &out)
{
    for (RunStatus s : {RunStatus::Done, RunStatus::Limit,
                        RunStatus::Stalled, RunStatus::TimedOut,
                        RunStatus::Cancelled, RunStatus::Failed}) {
        if (name == runStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

const char *
engineModeName(EngineMode mode)
{
    switch (mode) {
      case EngineMode::Dense: return "dense";
      case EngineMode::Skip: return "skip";
    }
    return "?";
}

} // namespace isrf
