#include "sim/engine.h"

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

void
Engine::add(Ticked *component)
{
    if (!component)
        panic("Engine::add: null component");
    components_.push_back(component);
}

void
Engine::step()
{
    for (Ticked *c : components_)
        c->tick(now_);
    for (Ticked *c : components_)
        c->postTick(now_);
    now_++;
}

void
Engine::steps(uint64_t n)
{
    for (uint64_t i = 0; i < n; i++)
        step();
}

RunResult
Engine::runUntil(const std::function<bool()> &done, uint64_t limit)
{
    uint64_t executed = 0;
    while (!done()) {
        if (executed >= limit) {
            // Dump the tail of the event trace first: a deadlocked
            // model's last grants/stalls are the diagnosis. Use the
            // owning machine's tracer so a multi-machine process never
            // prints another run's events.
            const Tracer &t = tracer_ ? *tracer_ : Tracer::instance();
            t.dumpTail(stderr, kDeadlockDumpEvents, label_.c_str());
            ISRF_WARN("Engine::runUntil%s%s%s: cycle limit %llu exceeded "
                      "at cycle %llu (model deadlock?)",
                      label_.empty() ? "" : " [",
                      label_.c_str(), label_.empty() ? "" : "]",
                      static_cast<unsigned long long>(limit),
                      static_cast<unsigned long long>(now_));
            return {RunStatus::Limit, executed};
        }
        step();
        executed++;
    }
    return {RunStatus::Done, executed};
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Done: return "done";
      case RunStatus::Limit: return "limit";
      case RunStatus::Stalled: return "stalled";
    }
    return "?";
}

} // namespace isrf
