# Empty compiler generated dependencies file for fft2d_demo.
# This may be replaced when dependencies are built.
