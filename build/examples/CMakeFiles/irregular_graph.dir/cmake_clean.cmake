file(REMOVE_RECURSE
  "CMakeFiles/irregular_graph.dir/irregular_graph.cpp.o"
  "CMakeFiles/irregular_graph.dir/irregular_graph.cpp.o.d"
  "irregular_graph"
  "irregular_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
