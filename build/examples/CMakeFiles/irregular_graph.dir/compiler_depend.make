# Empty compiler generated dependencies file for irregular_graph.
# This may be replaced when dependencies are built.
