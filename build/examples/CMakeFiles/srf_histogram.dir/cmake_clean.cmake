file(REMOVE_RECURSE
  "CMakeFiles/srf_histogram.dir/srf_histogram.cpp.o"
  "CMakeFiles/srf_histogram.dir/srf_histogram.cpp.o.d"
  "srf_histogram"
  "srf_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srf_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
