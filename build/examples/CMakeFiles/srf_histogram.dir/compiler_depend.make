# Empty compiler generated dependencies file for srf_histogram.
# This may be replaced when dependencies are built.
