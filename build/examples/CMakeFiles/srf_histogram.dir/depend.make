# Empty dependencies file for srf_histogram.
# This may be replaced when dependencies are built.
