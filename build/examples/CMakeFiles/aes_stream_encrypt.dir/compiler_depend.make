# Empty compiler generated dependencies file for aes_stream_encrypt.
# This may be replaced when dependencies are built.
