file(REMOVE_RECURSE
  "CMakeFiles/aes_stream_encrypt.dir/aes_stream_encrypt.cpp.o"
  "CMakeFiles/aes_stream_encrypt.dir/aes_stream_encrypt.cpp.o.d"
  "aes_stream_encrypt"
  "aes_stream_encrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_stream_encrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
