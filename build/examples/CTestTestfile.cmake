# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;isrf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft2d_demo "/root/repo/build/examples/fft2d_demo")
set_tests_properties(example_fft2d_demo PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;isrf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aes_stream_encrypt "/root/repo/build/examples/aes_stream_encrypt")
set_tests_properties(example_aes_stream_encrypt PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;isrf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irregular_graph "/root/repo/build/examples/irregular_graph")
set_tests_properties(example_irregular_graph PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;isrf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_srf_histogram "/root/repo/build/examples/srf_histogram")
set_tests_properties(example_srf_histogram PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;isrf_example;/root/repo/examples/CMakeLists.txt;0;")
