
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_area.cc" "tests/CMakeFiles/unit_tests.dir/test_area.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_area.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/unit_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_dump_rowmodel.cc" "tests/CMakeFiles/unit_tests.dir/test_dump_rowmodel.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_dump_rowmodel.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/unit_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/unit_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/unit_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/unit_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_kernel_ir.cc" "tests/CMakeFiles/unit_tests.dir/test_kernel_ir.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_kernel_ir.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/unit_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/unit_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_micro.cc" "tests/CMakeFiles/unit_tests.dir/test_micro.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_micro.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/unit_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_program.cc" "tests/CMakeFiles/unit_tests.dir/test_program.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_program.cc.o.d"
  "/root/repo/tests/test_references.cc" "tests/CMakeFiles/unit_tests.dir/test_references.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_references.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/unit_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/unit_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_srf_indexed.cc" "tests/CMakeFiles/unit_tests.dir/test_srf_indexed.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_srf_indexed.cc.o.d"
  "/root/repo/tests/test_srf_parts.cc" "tests/CMakeFiles/unit_tests.dir/test_srf_parts.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_srf_parts.cc.o.d"
  "/root/repo/tests/test_srf_seq.cc" "tests/CMakeFiles/unit_tests.dir/test_srf_seq.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_srf_seq.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/unit_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/unit_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_area.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_srf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
