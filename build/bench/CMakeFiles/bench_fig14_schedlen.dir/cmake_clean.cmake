file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_schedlen.dir/bench_fig14_schedlen.cc.o"
  "CMakeFiles/bench_fig14_schedlen.dir/bench_fig14_schedlen.cc.o.d"
  "bench_fig14_schedlen"
  "bench_fig14_schedlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_schedlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
