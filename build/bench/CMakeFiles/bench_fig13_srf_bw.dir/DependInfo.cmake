
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_srf_bw.cc" "bench/CMakeFiles/bench_fig13_srf_bw.dir/bench_fig13_srf_bw.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_srf_bw.dir/bench_fig13_srf_bw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_area.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_srf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
