# Empty compiler generated dependencies file for bench_fig13_srf_bw.
# This may be replaced when dependencies are built.
