file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_inlane_sep.dir/bench_fig15_inlane_sep.cc.o"
  "CMakeFiles/bench_fig15_inlane_sep.dir/bench_fig15_inlane_sep.cc.o.d"
  "bench_fig15_inlane_sep"
  "bench_fig15_inlane_sep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_inlane_sep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
