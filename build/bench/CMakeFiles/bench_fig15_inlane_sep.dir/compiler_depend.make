# Empty compiler generated dependencies file for bench_fig15_inlane_sep.
# This may be replaced when dependencies are built.
