file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subarrays.dir/bench_ablation_subarrays.cc.o"
  "CMakeFiles/bench_ablation_subarrays.dir/bench_ablation_subarrays.cc.o.d"
  "bench_ablation_subarrays"
  "bench_ablation_subarrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subarrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
