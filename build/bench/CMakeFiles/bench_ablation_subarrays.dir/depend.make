# Empty dependencies file for bench_ablation_subarrays.
# This may be replaced when dependencies are built.
