file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_memtraffic.dir/bench_fig11_memtraffic.cc.o"
  "CMakeFiles/bench_fig11_memtraffic.dir/bench_fig11_memtraffic.cc.o.d"
  "bench_fig11_memtraffic"
  "bench_fig11_memtraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_memtraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
