# Empty dependencies file for bench_fig17_inlane_throughput.
# This may be replaced when dependencies are built.
