# Empty compiler generated dependencies file for bench_fig16_crosslane_sep.
# This may be replaced when dependencies are built.
