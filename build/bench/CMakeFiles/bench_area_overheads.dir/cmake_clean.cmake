file(REMOVE_RECURSE
  "CMakeFiles/bench_area_overheads.dir/bench_area_overheads.cc.o"
  "CMakeFiles/bench_area_overheads.dir/bench_area_overheads.cc.o.d"
  "bench_area_overheads"
  "bench_area_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
