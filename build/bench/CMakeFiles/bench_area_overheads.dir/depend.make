# Empty dependencies file for bench_area_overheads.
# This may be replaced when dependencies are built.
