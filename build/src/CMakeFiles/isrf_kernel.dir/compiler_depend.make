# Empty compiler generated dependencies file for isrf_kernel.
# This may be replaced when dependencies are built.
