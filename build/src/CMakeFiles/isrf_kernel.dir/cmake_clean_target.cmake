file(REMOVE_RECURSE
  "libisrf_kernel.a"
)
