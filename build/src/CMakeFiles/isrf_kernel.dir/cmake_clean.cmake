file(REMOVE_RECURSE
  "CMakeFiles/isrf_kernel.dir/kernel/builder.cc.o"
  "CMakeFiles/isrf_kernel.dir/kernel/builder.cc.o.d"
  "CMakeFiles/isrf_kernel.dir/kernel/graph.cc.o"
  "CMakeFiles/isrf_kernel.dir/kernel/graph.cc.o.d"
  "CMakeFiles/isrf_kernel.dir/kernel/op.cc.o"
  "CMakeFiles/isrf_kernel.dir/kernel/op.cc.o.d"
  "CMakeFiles/isrf_kernel.dir/kernel/schedule_dump.cc.o"
  "CMakeFiles/isrf_kernel.dir/kernel/schedule_dump.cc.o.d"
  "CMakeFiles/isrf_kernel.dir/kernel/scheduler.cc.o"
  "CMakeFiles/isrf_kernel.dir/kernel/scheduler.cc.o.d"
  "libisrf_kernel.a"
  "libisrf_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
