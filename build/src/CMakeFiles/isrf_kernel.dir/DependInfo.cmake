
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/builder.cc" "src/CMakeFiles/isrf_kernel.dir/kernel/builder.cc.o" "gcc" "src/CMakeFiles/isrf_kernel.dir/kernel/builder.cc.o.d"
  "/root/repo/src/kernel/graph.cc" "src/CMakeFiles/isrf_kernel.dir/kernel/graph.cc.o" "gcc" "src/CMakeFiles/isrf_kernel.dir/kernel/graph.cc.o.d"
  "/root/repo/src/kernel/op.cc" "src/CMakeFiles/isrf_kernel.dir/kernel/op.cc.o" "gcc" "src/CMakeFiles/isrf_kernel.dir/kernel/op.cc.o.d"
  "/root/repo/src/kernel/schedule_dump.cc" "src/CMakeFiles/isrf_kernel.dir/kernel/schedule_dump.cc.o" "gcc" "src/CMakeFiles/isrf_kernel.dir/kernel/schedule_dump.cc.o.d"
  "/root/repo/src/kernel/scheduler.cc" "src/CMakeFiles/isrf_kernel.dir/kernel/scheduler.cc.o" "gcc" "src/CMakeFiles/isrf_kernel.dir/kernel/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
