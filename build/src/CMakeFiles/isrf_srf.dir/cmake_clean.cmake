file(REMOVE_RECURSE
  "CMakeFiles/isrf_srf.dir/srf/address_fifo.cc.o"
  "CMakeFiles/isrf_srf.dir/srf/address_fifo.cc.o.d"
  "CMakeFiles/isrf_srf.dir/srf/arbiter.cc.o"
  "CMakeFiles/isrf_srf.dir/srf/arbiter.cc.o.d"
  "CMakeFiles/isrf_srf.dir/srf/srf.cc.o"
  "CMakeFiles/isrf_srf.dir/srf/srf.cc.o.d"
  "CMakeFiles/isrf_srf.dir/srf/srf_bank.cc.o"
  "CMakeFiles/isrf_srf.dir/srf/srf_bank.cc.o.d"
  "CMakeFiles/isrf_srf.dir/srf/stream_buffer.cc.o"
  "CMakeFiles/isrf_srf.dir/srf/stream_buffer.cc.o.d"
  "CMakeFiles/isrf_srf.dir/srf/sub_array.cc.o"
  "CMakeFiles/isrf_srf.dir/srf/sub_array.cc.o.d"
  "libisrf_srf.a"
  "libisrf_srf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_srf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
