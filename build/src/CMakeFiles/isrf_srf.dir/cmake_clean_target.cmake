file(REMOVE_RECURSE
  "libisrf_srf.a"
)
