# Empty compiler generated dependencies file for isrf_srf.
# This may be replaced when dependencies are built.
