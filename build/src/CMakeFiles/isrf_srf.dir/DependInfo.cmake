
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srf/address_fifo.cc" "src/CMakeFiles/isrf_srf.dir/srf/address_fifo.cc.o" "gcc" "src/CMakeFiles/isrf_srf.dir/srf/address_fifo.cc.o.d"
  "/root/repo/src/srf/arbiter.cc" "src/CMakeFiles/isrf_srf.dir/srf/arbiter.cc.o" "gcc" "src/CMakeFiles/isrf_srf.dir/srf/arbiter.cc.o.d"
  "/root/repo/src/srf/srf.cc" "src/CMakeFiles/isrf_srf.dir/srf/srf.cc.o" "gcc" "src/CMakeFiles/isrf_srf.dir/srf/srf.cc.o.d"
  "/root/repo/src/srf/srf_bank.cc" "src/CMakeFiles/isrf_srf.dir/srf/srf_bank.cc.o" "gcc" "src/CMakeFiles/isrf_srf.dir/srf/srf_bank.cc.o.d"
  "/root/repo/src/srf/stream_buffer.cc" "src/CMakeFiles/isrf_srf.dir/srf/stream_buffer.cc.o" "gcc" "src/CMakeFiles/isrf_srf.dir/srf/stream_buffer.cc.o.d"
  "/root/repo/src/srf/sub_array.cc" "src/CMakeFiles/isrf_srf.dir/srf/sub_array.cc.o" "gcc" "src/CMakeFiles/isrf_srf.dir/srf/sub_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
