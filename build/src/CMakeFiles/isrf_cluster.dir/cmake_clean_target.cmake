file(REMOVE_RECURSE
  "libisrf_cluster.a"
)
