# Empty compiler generated dependencies file for isrf_cluster.
# This may be replaced when dependencies are built.
