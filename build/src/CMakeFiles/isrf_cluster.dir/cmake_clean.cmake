file(REMOVE_RECURSE
  "CMakeFiles/isrf_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/isrf_cluster.dir/cluster/cluster.cc.o.d"
  "libisrf_cluster.a"
  "libisrf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
