file(REMOVE_RECURSE
  "libisrf_workloads.a"
)
