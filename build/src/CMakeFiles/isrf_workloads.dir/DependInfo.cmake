
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/filter.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/filter.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/filter.cc.o.d"
  "/root/repo/src/workloads/igraph.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/igraph.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/igraph.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/rijndael.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/rijndael.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/rijndael.cc.o.d"
  "/root/repo/src/workloads/sort.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/sort.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/sort.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/isrf_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/isrf_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_srf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_area.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
