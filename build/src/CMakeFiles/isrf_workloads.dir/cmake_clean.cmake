file(REMOVE_RECURSE
  "CMakeFiles/isrf_workloads.dir/workloads/fft.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/fft.cc.o.d"
  "CMakeFiles/isrf_workloads.dir/workloads/filter.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/filter.cc.o.d"
  "CMakeFiles/isrf_workloads.dir/workloads/igraph.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/igraph.cc.o.d"
  "CMakeFiles/isrf_workloads.dir/workloads/micro.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/micro.cc.o.d"
  "CMakeFiles/isrf_workloads.dir/workloads/rijndael.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/rijndael.cc.o.d"
  "CMakeFiles/isrf_workloads.dir/workloads/sort.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/sort.cc.o.d"
  "CMakeFiles/isrf_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/isrf_workloads.dir/workloads/workload.cc.o.d"
  "libisrf_workloads.a"
  "libisrf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
