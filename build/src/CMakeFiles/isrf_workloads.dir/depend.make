# Empty dependencies file for isrf_workloads.
# This may be replaced when dependencies are built.
