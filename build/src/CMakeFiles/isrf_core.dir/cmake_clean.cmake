file(REMOVE_RECURSE
  "CMakeFiles/isrf_core.dir/core/breakdown.cc.o"
  "CMakeFiles/isrf_core.dir/core/breakdown.cc.o.d"
  "CMakeFiles/isrf_core.dir/core/config.cc.o"
  "CMakeFiles/isrf_core.dir/core/config.cc.o.d"
  "CMakeFiles/isrf_core.dir/core/machine.cc.o"
  "CMakeFiles/isrf_core.dir/core/machine.cc.o.d"
  "CMakeFiles/isrf_core.dir/core/report.cc.o"
  "CMakeFiles/isrf_core.dir/core/report.cc.o.d"
  "CMakeFiles/isrf_core.dir/core/stream.cc.o"
  "CMakeFiles/isrf_core.dir/core/stream.cc.o.d"
  "CMakeFiles/isrf_core.dir/core/stream_program.cc.o"
  "CMakeFiles/isrf_core.dir/core/stream_program.cc.o.d"
  "libisrf_core.a"
  "libisrf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
