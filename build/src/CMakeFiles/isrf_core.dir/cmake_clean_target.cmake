file(REMOVE_RECURSE
  "libisrf_core.a"
)
