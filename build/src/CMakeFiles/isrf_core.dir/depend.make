# Empty dependencies file for isrf_core.
# This may be replaced when dependencies are built.
