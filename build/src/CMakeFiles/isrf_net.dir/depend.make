# Empty dependencies file for isrf_net.
# This may be replaced when dependencies are built.
