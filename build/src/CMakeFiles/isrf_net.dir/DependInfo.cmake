
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/crossbar.cc" "src/CMakeFiles/isrf_net.dir/net/crossbar.cc.o" "gcc" "src/CMakeFiles/isrf_net.dir/net/crossbar.cc.o.d"
  "/root/repo/src/net/index_network.cc" "src/CMakeFiles/isrf_net.dir/net/index_network.cc.o" "gcc" "src/CMakeFiles/isrf_net.dir/net/index_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
