file(REMOVE_RECURSE
  "libisrf_net.a"
)
