file(REMOVE_RECURSE
  "CMakeFiles/isrf_net.dir/net/crossbar.cc.o"
  "CMakeFiles/isrf_net.dir/net/crossbar.cc.o.d"
  "CMakeFiles/isrf_net.dir/net/index_network.cc.o"
  "CMakeFiles/isrf_net.dir/net/index_network.cc.o.d"
  "libisrf_net.a"
  "libisrf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
