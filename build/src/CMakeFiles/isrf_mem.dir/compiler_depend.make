# Empty compiler generated dependencies file for isrf_mem.
# This may be replaced when dependencies are built.
