
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/isrf_mem.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/isrf_mem.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/isrf_mem.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/isrf_mem.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/isrf_mem.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/isrf_mem.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/stream_mem_unit.cc" "src/CMakeFiles/isrf_mem.dir/mem/stream_mem_unit.cc.o" "gcc" "src/CMakeFiles/isrf_mem.dir/mem/stream_mem_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
