file(REMOVE_RECURSE
  "CMakeFiles/isrf_mem.dir/mem/cache.cc.o"
  "CMakeFiles/isrf_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/isrf_mem.dir/mem/dram.cc.o"
  "CMakeFiles/isrf_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/isrf_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/isrf_mem.dir/mem/memory_system.cc.o.d"
  "CMakeFiles/isrf_mem.dir/mem/stream_mem_unit.cc.o"
  "CMakeFiles/isrf_mem.dir/mem/stream_mem_unit.cc.o.d"
  "libisrf_mem.a"
  "libisrf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
