file(REMOVE_RECURSE
  "libisrf_mem.a"
)
