# Empty dependencies file for isrf_sim.
# This may be replaced when dependencies are built.
