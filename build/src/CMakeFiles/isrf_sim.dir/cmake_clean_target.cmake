file(REMOVE_RECURSE
  "libisrf_sim.a"
)
