file(REMOVE_RECURSE
  "CMakeFiles/isrf_sim.dir/sim/engine.cc.o"
  "CMakeFiles/isrf_sim.dir/sim/engine.cc.o.d"
  "libisrf_sim.a"
  "libisrf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
