file(REMOVE_RECURSE
  "CMakeFiles/isrf_area.dir/area/cacti_lite.cc.o"
  "CMakeFiles/isrf_area.dir/area/cacti_lite.cc.o.d"
  "CMakeFiles/isrf_area.dir/area/energy.cc.o"
  "CMakeFiles/isrf_area.dir/area/energy.cc.o.d"
  "libisrf_area.a"
  "libisrf_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
