file(REMOVE_RECURSE
  "libisrf_area.a"
)
