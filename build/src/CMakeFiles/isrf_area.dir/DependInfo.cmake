
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/area/cacti_lite.cc" "src/CMakeFiles/isrf_area.dir/area/cacti_lite.cc.o" "gcc" "src/CMakeFiles/isrf_area.dir/area/cacti_lite.cc.o.d"
  "/root/repo/src/area/energy.cc" "src/CMakeFiles/isrf_area.dir/area/energy.cc.o" "gcc" "src/CMakeFiles/isrf_area.dir/area/energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
