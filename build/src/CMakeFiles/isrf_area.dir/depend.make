# Empty dependencies file for isrf_area.
# This may be replaced when dependencies are built.
