file(REMOVE_RECURSE
  "libisrf_util.a"
)
