# Empty dependencies file for isrf_util.
# This may be replaced when dependencies are built.
