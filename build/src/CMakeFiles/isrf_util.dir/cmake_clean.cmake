file(REMOVE_RECURSE
  "CMakeFiles/isrf_util.dir/util/log.cc.o"
  "CMakeFiles/isrf_util.dir/util/log.cc.o.d"
  "CMakeFiles/isrf_util.dir/util/stats.cc.o"
  "CMakeFiles/isrf_util.dir/util/stats.cc.o.d"
  "CMakeFiles/isrf_util.dir/util/table.cc.o"
  "CMakeFiles/isrf_util.dir/util/table.cc.o.d"
  "libisrf_util.a"
  "libisrf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isrf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
